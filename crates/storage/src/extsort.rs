//! External merge sort of tuple files.
//!
//! `JKB` — the Compute_Tree implementation that does *not* assume a dual
//! representation of the graph — has to derive immediate-predecessor lists
//! from a relation clustered on the source attribute. We model the natural
//! way a database would do that: extract the (magic) arcs, then
//! external-sort them on the destination attribute with the limited memory
//! the buffer pool provides. The page traffic of run generation and merge
//! passes is exactly the "very high preprocessing cost" the paper observes
//! for `JKB` on high out-degree graphs (§6.2).
//!
//! The sort is a textbook B-page external merge sort: runs of B pages are
//! sorted in memory, then merged (B−1)-way until one run remains. All page
//! traffic goes through the supplied [`Pager`].

use crate::disk::FileKind;
use crate::error::{StorageError, StorageResult};
use crate::layout::tuple::{TuplePage, TUPLES_PER_PAGE};
use crate::page::Page;
use crate::pager::Pager;
use crate::relation::{RelationFile, Tuple, TupleWriter};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sorts `input` on the first tuple component (ties broken on the second)
/// using at most `mem_pages` pages of working memory, writing the result
/// to a fresh file of kind `out_kind`.
///
/// Returns the sorted file. Requires `mem_pages >= 3` (one output page and
/// at least a 2-way merge).
pub fn external_sort<P: Pager>(
    pager: &mut P,
    input: &RelationFile,
    mem_pages: usize,
    out_kind: FileKind,
) -> StorageResult<RelationFile> {
    if mem_pages < 3 {
        return Err(StorageError::InsufficientSortMemory {
            got: mem_pages,
            need: 3,
        });
    }

    // Phase 1: run generation.
    let mut runs: Vec<RelationFile> = Vec::new();
    {
        let run_capacity = mem_pages * TUPLES_PER_PAGE;
        let mut buf: Vec<Tuple> = Vec::with_capacity(run_capacity);
        let pages = input.pages().to_vec();
        for (i, &pid) in pages.iter().enumerate() {
            let count = input.tuples_on_page(i);
            pager.with_page(pid, &mut |pg: &Page| {
                TuplePage::read_all(pg, count, &mut buf);
            })?;
            if buf.len() >= run_capacity {
                runs.push(write_run(pager, &mut buf)?);
            }
        }
        if !buf.is_empty() {
            runs.push(write_run(pager, &mut buf)?);
        }
    }

    if runs.is_empty() {
        // Empty input: produce an empty output file.
        let w = TupleWriter::new(pager, out_kind);
        return Ok(w.finish());
    }

    // Phase 2: (mem_pages - 1)-way merge passes. Consumed runs are
    // deleted so the scratch footprint stays at ~2× the input.
    let fan_in = mem_pages - 1;
    while runs.len() > 1 {
        let mut next: Vec<RelationFile> = Vec::new();
        let last_pass = runs.len() <= fan_in;
        for group in runs.chunks(fan_in) {
            let kind = if last_pass { out_kind } else { FileKind::Temp };
            next.push(merge_runs(pager, group, kind)?);
            for run in group {
                pager.free_file(run.file_id())?;
            }
        }
        runs = next;
    }
    let mut out = runs;
    out.pop().ok_or(StorageError::Internal("at least one run"))
}

fn write_run<P: Pager>(pager: &mut P, buf: &mut Vec<Tuple>) -> StorageResult<RelationFile> {
    buf.sort_unstable();
    let mut w = TupleWriter::new(pager, FileKind::Temp);
    for &t in buf.iter() {
        w.push(pager, t)?;
    }
    buf.clear();
    Ok(w.finish())
}

/// Page-at-a-time cursor over a sorted run.
struct RunCursor {
    run: RelationFile,
    page_idx: usize,
    buf: Vec<Tuple>,
    pos: usize,
}

impl RunCursor {
    fn new(run: RelationFile) -> RunCursor {
        RunCursor {
            run,
            page_idx: 0,
            buf: Vec::with_capacity(TUPLES_PER_PAGE),
            pos: 0,
        }
    }

    /// Loads the next page if the buffer is exhausted. Returns false at EOF.
    fn refill<P: Pager>(&mut self, pager: &mut P) -> StorageResult<bool> {
        if self.pos < self.buf.len() {
            return Ok(true);
        }
        if self.page_idx >= self.run.page_count() {
            return Ok(false);
        }
        self.buf.clear();
        self.pos = 0;
        let count = self.run.tuples_on_page(self.page_idx);
        let pid = self.run.pages()[self.page_idx];
        let buf = &mut self.buf;
        pager.with_page(pid, &mut |pg: &Page| {
            TuplePage::read_all(pg, count, buf);
        })?;
        self.page_idx += 1;
        Ok(!self.buf.is_empty())
    }

    fn peek(&self) -> Tuple {
        self.buf[self.pos]
    }

    fn advance(&mut self) {
        self.pos += 1;
    }
}

fn merge_runs<P: Pager>(
    pager: &mut P,
    group: &[RelationFile],
    out_kind: FileKind,
) -> StorageResult<RelationFile> {
    let mut cursors: Vec<RunCursor> = group.iter().cloned().map(RunCursor::new).collect();
    let mut heap: BinaryHeap<Reverse<(Tuple, usize)>> = BinaryHeap::new();
    for (i, c) in cursors.iter_mut().enumerate() {
        if c.refill(pager)? {
            heap.push(Reverse((c.peek(), i)));
        }
    }
    let mut w = TupleWriter::new(pager, out_kind);
    while let Some(Reverse((t, i))) = heap.pop() {
        w.push(pager, t)?;
        let c = &mut cursors[i];
        c.advance();
        if c.refill(pager)? {
            heap.push(Reverse((c.peek(), i)));
        }
    }
    debug_assert!(w.is_sorted());
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskSim;
    use crate::store::PageStore;

    fn sort_case(n: usize, mem_pages: usize) {
        let mut disk = DiskSim::new();
        // Deterministic pseudo-random input.
        let mut rng = tc_det::Rng::from_seed(12345);
        let mut data: Vec<Tuple> = Vec::with_capacity(n);
        for _ in 0..n {
            data.push((rng.random_range(0..5000u32), rng.random_range(0..5000u32)));
        }
        let mut w = TupleWriter::new(&mut disk, FileKind::Temp);
        for &t in &data {
            w.push(&mut disk, t).unwrap();
        }
        let input = w.finish();
        let sorted = external_sort(&mut disk, &input, mem_pages, FileKind::Temp).unwrap();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(sorted.scan(&mut disk).unwrap(), expect);
    }

    #[test]
    fn sorts_single_run() {
        sort_case(100, 4);
    }

    #[test]
    fn sorts_multiple_runs_single_pass() {
        sort_case(3000, 4); // 12 input pages, runs of 4, 3-way merge.
    }

    #[test]
    fn sorts_multiple_passes() {
        sort_case(20_000, 3); // 79 pages, runs of 3, 2-way merges, several passes.
    }

    #[test]
    fn empty_input() {
        let mut disk = DiskSim::new();
        let w = TupleWriter::new(&mut disk, FileKind::Temp);
        let input = w.finish();
        let sorted = external_sort(&mut disk, &input, 4, FileKind::Temp).unwrap();
        assert_eq!(sorted.tuple_count(), 0);
    }

    #[test]
    fn rejects_tiny_memory() {
        let mut disk = DiskSim::new();
        let w = TupleWriter::new(&mut disk, FileKind::Temp);
        let input = w.finish();
        assert!(matches!(
            external_sort(&mut disk, &input, 2, FileKind::Temp),
            Err(StorageError::InsufficientSortMemory { .. })
        ));
    }

    #[test]
    fn charges_io_proportional_to_passes() {
        let mut disk = DiskSim::new();
        let n = 10_000usize;
        let mut w = TupleWriter::new(&mut disk, FileKind::Temp);
        for i in 0..n {
            w.push(&mut disk, ((n - i) as u32, 0)).unwrap();
        }
        let input = w.finish();
        disk.reset_stats();
        let _ = external_sort(&mut disk, &input, 5, FileKind::Temp).unwrap();
        let stats = disk.stats();
        // With a direct (unbuffered) pager every TupleWriter::push is a
        // read-modify-write, so we only sanity-check the lower bound: each
        // pass must at least read and write every data page once.
        let pages = input.page_count() as u64;
        assert!(
            stats.reads >= 2 * pages,
            "reads {} pages {}",
            stats.reads,
            pages
        );
    }
}
