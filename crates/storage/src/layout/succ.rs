//! Successor-list page layout: 30 blocks of 15 entries (450 per page).
//!
//! The paper (§5.1): "After conversion to successor list format in the
//! restructuring phase 450 successors may be stored on each page. (A
//! successor list page is divided into 30 blocks, each holding up to 15
//! successor nodes.)"
//!
//! Layout of a 2048-byte successor page:
//!
//! ```text
//! offset 0    ..120   30 × u32  block owner (node id + 1; 0 = free block)
//! offset 120  ..150   30 × u8   entries used in each block (0..=15)
//! offset 152  ..1952  30 × 15 × i32  entry slots
//! offset 1952 ..2048  unused
//! ```
//!
//! Entries are *signed*: in the flat list format the last immediate
//! successor of a list is stored negated; in the spanning-tree format a
//! parent (internal) node is stored negated and is followed by its
//! children. Node ids are stored as `id + 1` inside entries so that node 0
//! can carry a sign (the accessors apply the bias; callers see plain ids).

use crate::page::{Page, PageId};

/// Blocks per successor page.
pub const BLOCKS_PER_PAGE: usize = 30;
/// Entry slots per block.
pub const ENTRIES_PER_BLOCK: usize = 15;
/// Successors per page (the paper's 450).
pub const SUCCESSORS_PER_PAGE: usize = BLOCKS_PER_PAGE * ENTRIES_PER_BLOCK;

const OWNERS_OFF: usize = 0;
const USED_OFF: usize = OWNERS_OFF + BLOCKS_PER_PAGE * 4;
const ENTRIES_OFF: usize = 152;

/// Address of one block on one successor page.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SuccBlockRef {
    /// Page holding the block.
    pub page: PageId,
    /// Block index within the page (`0..BLOCKS_PER_PAGE`).
    pub block: u8,
}

/// A signed successor entry as seen by callers: a node id plus a tag bit.
///
/// The tag is the paper's negation trick; what it *means* depends on the
/// list format (end-of-list for flat lists, parent marker for trees).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SuccEntry {
    /// The node id.
    pub node: u32,
    /// Whether the entry was stored negated.
    pub tagged: bool,
}

impl SuccEntry {
    /// Plain (untagged) entry.
    pub fn plain(node: u32) -> Self {
        SuccEntry {
            node,
            tagged: false,
        }
    }

    /// Tagged (negated) entry.
    pub fn tagged(node: u32) -> Self {
        SuccEntry { node, tagged: true }
    }
}

/// Read/write view of a successor page.
pub struct SuccPage;

impl SuccPage {
    /// Owner of block `b`, or `None` if the block is free.
    #[inline]
    pub fn owner(page: &Page, b: usize) -> Option<u32> {
        debug_assert!(b < BLOCKS_PER_PAGE);
        let raw = page.get_u32(OWNERS_OFF + b * 4);
        if raw == 0 {
            None
        } else {
            Some(raw - 1)
        }
    }

    /// Assigns block `b` to node `owner`.
    #[inline]
    pub fn set_owner(page: &mut Page, b: usize, owner: u32) {
        debug_assert!(b < BLOCKS_PER_PAGE);
        page.put_u32(OWNERS_OFF + b * 4, owner + 1);
    }

    /// Frees block `b` (clears owner and used count).
    #[inline]
    pub fn free_block(page: &mut Page, b: usize) {
        debug_assert!(b < BLOCKS_PER_PAGE);
        page.put_u32(OWNERS_OFF + b * 4, 0);
        page.put_u8(USED_OFF + b, 0);
    }

    /// Number of entries used in block `b`.
    #[inline]
    pub fn used(page: &Page, b: usize) -> usize {
        debug_assert!(b < BLOCKS_PER_PAGE);
        page.get_u8(USED_OFF + b) as usize
    }

    /// Sets the used count of block `b`.
    #[inline]
    pub fn set_used(page: &mut Page, b: usize, used: usize) {
        debug_assert!(b < BLOCKS_PER_PAGE && used <= ENTRIES_PER_BLOCK);
        page.put_u8(USED_OFF + b, used as u8);
    }

    /// Reads entry `k` of block `b`.
    #[inline]
    pub fn entry(page: &Page, b: usize, k: usize) -> SuccEntry {
        debug_assert!(b < BLOCKS_PER_PAGE && k < ENTRIES_PER_BLOCK);
        let raw = page.get_i32(ENTRIES_OFF + (b * ENTRIES_PER_BLOCK + k) * 4);
        debug_assert!(raw != 0, "entry slot read before being written");
        if raw < 0 {
            SuccEntry {
                node: (-raw - 1) as u32,
                tagged: true,
            }
        } else {
            SuccEntry {
                node: (raw - 1) as u32,
                tagged: false,
            }
        }
    }

    /// Writes entry `k` of block `b`.
    #[inline]
    pub fn set_entry(page: &mut Page, b: usize, k: usize, e: SuccEntry) {
        debug_assert!(b < BLOCKS_PER_PAGE && k < ENTRIES_PER_BLOCK);
        let biased = (e.node + 1) as i32;
        let raw = if e.tagged { -biased } else { biased };
        page.put_i32(ENTRIES_OFF + (b * ENTRIES_PER_BLOCK + k) * 4, raw);
    }

    /// Index of the first free block on the page, if any.
    pub fn find_free_block(page: &Page) -> Option<usize> {
        (0..BLOCKS_PER_PAGE).find(|&b| Self::owner(page, b).is_none())
    }

    /// Number of free blocks on the page.
    pub fn free_blocks(page: &Page) -> usize {
        (0..BLOCKS_PER_PAGE)
            .filter(|&b| Self::owner(page, b).is_none())
            .count()
    }

    /// Blocks on this page owned by `node`, in block order.
    pub fn blocks_of(page: &Page, node: u32) -> Vec<usize> {
        (0..BLOCKS_PER_PAGE)
            .filter(|&b| Self::owner(page, b) == Some(node))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    #[test]
    fn capacities_match_paper() {
        assert_eq!(BLOCKS_PER_PAGE, 30);
        assert_eq!(ENTRIES_PER_BLOCK, 15);
        assert_eq!(SUCCESSORS_PER_PAGE, 450);
        // Layout must fit in the page.
        const _FITS: () = assert!(ENTRIES_OFF + SUCCESSORS_PER_PAGE * 4 <= PAGE_SIZE);
    }

    #[test]
    fn owner_round_trip_including_node_zero() {
        let mut p = Page::new();
        assert_eq!(SuccPage::owner(&p, 0), None);
        SuccPage::set_owner(&mut p, 0, 0);
        assert_eq!(SuccPage::owner(&p, 0), Some(0));
        SuccPage::set_owner(&mut p, 29, 1999);
        assert_eq!(SuccPage::owner(&p, 29), Some(1999));
        SuccPage::free_block(&mut p, 0);
        assert_eq!(SuccPage::owner(&p, 0), None);
    }

    #[test]
    fn entry_sign_round_trip() {
        let mut p = Page::new();
        SuccPage::set_entry(&mut p, 3, 0, SuccEntry::plain(0));
        SuccPage::set_entry(&mut p, 3, 1, SuccEntry::tagged(0));
        SuccPage::set_entry(&mut p, 3, 14, SuccEntry::tagged(1999));
        assert_eq!(SuccPage::entry(&p, 3, 0), SuccEntry::plain(0));
        assert_eq!(SuccPage::entry(&p, 3, 1), SuccEntry::tagged(0));
        assert_eq!(SuccPage::entry(&p, 3, 14), SuccEntry::tagged(1999));
    }

    #[test]
    fn used_counts() {
        let mut p = Page::new();
        assert_eq!(SuccPage::used(&p, 7), 0);
        SuccPage::set_used(&mut p, 7, 15);
        assert_eq!(SuccPage::used(&p, 7), 15);
    }

    #[test]
    fn free_block_scan() {
        let mut p = Page::new();
        assert_eq!(SuccPage::find_free_block(&p), Some(0));
        assert_eq!(SuccPage::free_blocks(&p), 30);
        for b in 0..BLOCKS_PER_PAGE {
            SuccPage::set_owner(&mut p, b, 5);
        }
        assert_eq!(SuccPage::find_free_block(&p), None);
        assert_eq!(SuccPage::free_blocks(&p), 0);
        assert_eq!(SuccPage::blocks_of(&p, 5).len(), 30);
    }

    #[test]
    fn blocks_do_not_alias_headers() {
        // Filling every entry slot must not disturb owners/used counts.
        let mut p = Page::new();
        for b in 0..BLOCKS_PER_PAGE {
            SuccPage::set_owner(&mut p, b, b as u32);
            SuccPage::set_used(&mut p, b, b % 16);
        }
        for b in 0..BLOCKS_PER_PAGE {
            for k in 0..ENTRIES_PER_BLOCK {
                SuccPage::set_entry(&mut p, b, k, SuccEntry::plain((b * 31 + k) as u32));
            }
        }
        for b in 0..BLOCKS_PER_PAGE {
            assert_eq!(SuccPage::owner(&p, b), Some(b as u32));
            assert_eq!(SuccPage::used(&p, b), b % 16);
            for k in 0..ENTRIES_PER_BLOCK {
                assert_eq!(
                    SuccPage::entry(&p, b, k),
                    SuccEntry::plain((b * 31 + k) as u32)
                );
            }
        }
    }
}
