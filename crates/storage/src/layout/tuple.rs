//! Tuple-page layout: 256 eight-byte `(src, dst)` tuples per page.
//!
//! The paper: "The input relation tuples are 8 bytes long (two integers).
//! Hence, in the relation format 256 tuples may be stored on a page"
//! (§5.1). 256 × 8 = 2048 fills the page exactly, so there is no on-page
//! header; the number of valid tuples on the (only partially filled) last
//! page of a file is tracked by the owning [`crate::RelationFile`].

use crate::page::{Page, PAGE_SIZE};

/// Number of 8-byte tuples per 2048-byte page (exactly fills the page).
pub const TUPLES_PER_PAGE: usize = PAGE_SIZE / 8;

/// Read/write view of a tuple page.
///
/// Slots are dense: slot `i` occupies bytes `[8i, 8i + 8)`, source then
/// destination, little-endian `u32`s.
pub struct TuplePage;

impl TuplePage {
    /// Reads the tuple in slot `slot`.
    #[inline]
    pub fn get(page: &Page, slot: usize) -> (u32, u32) {
        debug_assert!(slot < TUPLES_PER_PAGE);
        let off = slot * 8;
        (page.get_u32(off), page.get_u32(off + 4))
    }

    /// Writes `(src, dst)` into slot `slot`.
    #[inline]
    pub fn put(page: &mut Page, slot: usize, src: u32, dst: u32) {
        debug_assert!(slot < TUPLES_PER_PAGE);
        let off = slot * 8;
        page.put_u32(off, src);
        page.put_u32(off + 4, dst);
    }

    /// Reads the first `count` tuples of the page into `out`.
    pub fn read_all(page: &Page, count: usize, out: &mut Vec<(u32, u32)>) {
        debug_assert!(count <= TUPLES_PER_PAGE);
        out.reserve(count);
        for slot in 0..count {
            out.push(Self::get(page, slot));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_paper() {
        assert_eq!(TUPLES_PER_PAGE, 256);
    }

    #[test]
    fn slot_round_trip() {
        let mut p = Page::new();
        TuplePage::put(&mut p, 0, 1, 2);
        TuplePage::put(&mut p, 255, 1999, 4);
        assert_eq!(TuplePage::get(&p, 0), (1, 2));
        assert_eq!(TuplePage::get(&p, 255), (1999, 4));
    }

    #[test]
    fn read_all_prefix() {
        let mut p = Page::new();
        for i in 0..10 {
            TuplePage::put(&mut p, i, i as u32, (i * 2) as u32);
        }
        let mut out = Vec::new();
        TuplePage::read_all(&p, 10, &mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], (9, 18));
    }

    #[test]
    fn slots_do_not_overlap() {
        let mut p = Page::new();
        for i in 0..TUPLES_PER_PAGE {
            TuplePage::put(&mut p, i, i as u32, u32::MAX - i as u32);
        }
        for i in 0..TUPLES_PER_PAGE {
            assert_eq!(TuplePage::get(&p, i), (i as u32, u32::MAX - i as u32));
        }
    }
}
