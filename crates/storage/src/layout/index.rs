//! Sparse clustered-index page layout.
//!
//! The paper assumes "the existence of a clustered index on the source
//! attribute" (§4). Because the relation is clustered, a sparse index
//! suffices: one entry per data page, recording the first key on that
//! page. Index pages hold 512 four-byte keys; the position of a key within
//! the index determines the data page it describes, so no page pointers
//! are stored.

use crate::page::{Page, PAGE_SIZE};

/// Keys per index page (4-byte keys, no header needed).
pub const KEYS_PER_INDEX_PAGE: usize = PAGE_SIZE / 4;

/// Read/write view of a sparse index page.
pub struct IndexPage;

impl IndexPage {
    /// Reads the key in slot `slot`.
    #[inline]
    pub fn get(page: &Page, slot: usize) -> u32 {
        debug_assert!(slot < KEYS_PER_INDEX_PAGE);
        page.get_u32(slot * 4)
    }

    /// Writes `key` into slot `slot`.
    #[inline]
    pub fn put(page: &mut Page, slot: usize, key: u32) {
        debug_assert!(slot < KEYS_PER_INDEX_PAGE);
        page.put_u32(slot * 4, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity() {
        assert_eq!(KEYS_PER_INDEX_PAGE, 512);
    }

    #[test]
    fn round_trip() {
        let mut p = Page::new();
        IndexPage::put(&mut p, 0, 10);
        IndexPage::put(&mut p, 511, 20_000);
        assert_eq!(IndexPage::get(&p, 0), 10);
        assert_eq!(IndexPage::get(&p, 511), 20_000);
    }
}
