//! Byte-exact page layouts for the study's on-disk formats.
//!
//! Three formats appear in the paper (§5.1):
//!
//! * **Tuple pages** — the input relation stores 8-byte tuples (two
//!   integers), 256 per 2048-byte page ([`mod@tuple`]).
//! * **Index pages** — a sparse clustered index recording the first key of
//!   each data page ([`index`]).
//! * **Successor-list pages** — after restructuring, "450 successors may be
//!   stored on each page. (A successor list page is divided into 30 blocks,
//!   each holding up to 15 successor nodes.)" ([`succ`]).
//!
//! The layout types are zero-cost *views*: they borrow a [`crate::Page`]
//! and interpret its bytes. All capacities are compile-time constants so
//! the harness numbers line up with the paper's.

pub mod index;
pub mod succ;
pub mod tuple;

pub use index::{IndexPage, KEYS_PER_INDEX_PAGE};
pub use succ::{
    SuccBlockRef, SuccEntry, SuccPage, BLOCKS_PER_PAGE, ENTRIES_PER_BLOCK, SUCCESSORS_PER_PAGE,
};
pub use tuple::{TuplePage, TUPLES_PER_PAGE};
