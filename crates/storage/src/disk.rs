//! The simulated disk: page-granular storage with full I/O accounting.
//!
//! The paper's experiments run against a *simulated* buffer manager that
//! records the number of page I/Os (§6.1); wall-clock time is then compared
//! with an estimated I/O time of 20 ms per page transfer. [`DiskSim`] is
//! that disk: it stores page images, tags every page with the file it
//! belongs to, and counts physical reads and writes, broken down by file
//! kind so that the harness can report relation vs. index vs.
//! successor-list traffic separately.
//!
//! `DiskSim` is one of two implementations of the
//! [`PageStore`](crate::PageStore) backend trait — the in-memory,
//! counting one. The file-backed one lives in
//! [`crate::FileStore`]; both are driven through the trait.

use crate::error::{StorageError, StorageResult};
use crate::fault::{FaultPlan, RetryPolicy, RetryTally};
use crate::page::{Page, PageId};
use crate::store::PageStore;
use std::fmt;
use tc_trace::{Event, Kind, Tracer};

/// What role a file plays in the study's storage layout.
///
/// The breakdown lets the experiment harness attribute I/O the way the
/// paper discusses it: input-relation scans and index probes during the
/// restructuring phase versus successor-list traffic during the
/// computation phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FileKind {
    /// The input relation, clustered on the source attribute.
    Relation,
    /// The arc-reversed relation, clustered on the destination attribute
    /// (the dual representation required by `JKB2`, paper §4.1).
    InverseRelation,
    /// Sparse clustered-index pages.
    Index,
    /// Successor-list / successor-tree pages (the paper's 30-block format).
    SuccessorList,
    /// Scratch space (external-sort runs, seminaive deltas).
    Temp,
    /// Materialized query output.
    Output,
}

impl FileKind {
    /// All kinds, in reporting order.
    pub const ALL: [FileKind; 6] = [
        FileKind::Relation,
        FileKind::InverseRelation,
        FileKind::Index,
        FileKind::SuccessorList,
        FileKind::Temp,
        FileKind::Output,
    ];

    /// Stable index of this kind into per-kind counter arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            FileKind::Relation => 0,
            FileKind::InverseRelation => 1,
            FileKind::Index => 2,
            FileKind::SuccessorList => 3,
            FileKind::Temp => 4,
            FileKind::Output => 5,
        }
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FileKind::Relation => "relation",
            FileKind::InverseRelation => "inverse-relation",
            FileKind::Index => "index",
            FileKind::SuccessorList => "successor-list",
            FileKind::Temp => "temp",
            FileKind::Output => "output",
        }
    }
}

/// Identifier of a file (an extent of pages) on a page store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(pub u32);

pub(crate) struct FileMeta {
    pub(crate) kind: FileKind,
    pub(crate) pages: Vec<PageId>,
}

/// Physical I/O counters, overall and broken down by [`FileKind`].
///
/// Counter snapshots subtract cleanly, which is how the engine attributes
/// I/O to the restructuring versus computation phases.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct DiskStats {
    /// Total physical page reads.
    pub reads: u64,
    /// Total physical page writes.
    pub writes: u64,
    /// Physical reads by file kind (indexed by [`FileKind::idx`]).
    pub reads_by_kind: [u64; 6],
    /// Physical writes by file kind (indexed by [`FileKind::idx`]).
    pub writes_by_kind: [u64; 6],
}

impl DiskStats {
    /// Total physical I/Os (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counter-wise difference `self - earlier`; used for phase attribution.
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        debug_assert!(self.reads >= earlier.reads && self.writes >= earlier.writes);
        let mut out = DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            ..DiskStats::default()
        };
        for i in 0..6 {
            out.reads_by_kind[i] = self.reads_by_kind[i] - earlier.reads_by_kind[i];
            out.writes_by_kind[i] = self.writes_by_kind[i] - earlier.writes_by_kind[i];
        }
        out
    }
}

impl fmt::Display for DiskStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} reads, {} writes", self.reads, self.writes)
    }
}

/// The I/O latency model used to estimate elapsed I/O time.
///
/// The paper established ~20 ms per page I/O for its RZ24 disk by separate
/// measurement and multiplies the simulated I/O count by it (§6.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoCostModel {
    /// Milliseconds charged per physical page I/O.
    pub ms_per_io: f64,
}

impl Default for IoCostModel {
    fn default() -> Self {
        IoCostModel { ms_per_io: 20.0 }
    }
}

impl IoCostModel {
    /// Estimated I/O time in seconds for `ios` page transfers.
    pub fn estimate_seconds(&self, ios: u64) -> f64 {
        ios as f64 * self.ms_per_io / 1000.0
    }
}

/// A simulated disk.
///
/// Pages live in memory but every [`PageStore::read_page`] /
/// [`PageStore::write_page`] is counted as a physical transfer. Higher
/// layers access pages through the buffer pool, so these counters reflect
/// buffer misses and dirty-page write-backs — the paper's primary cost
/// metric.
///
/// All page and file operations live in the [`PageStore`] impl below;
/// `DiskSim` itself only constructs.
pub struct DiskSim {
    files: Vec<FileMeta>,
    pages: Vec<Page>,
    page_file: Vec<FileId>,
    /// FNV-1a checksum of each page, recorded on write and verified on
    /// read while a fault plan is armed (silent corruption is detected,
    /// never absorbed).
    checksums: Vec<u64>,
    free_pages: Vec<PageId>,
    stats: DiskStats,
    fault: Option<FaultPlan>,
    /// Retry policy of the *direct* pager path (tests and bulk loads);
    /// buffered access retries in `tc-buffer` instead.
    retry: RetryPolicy,
    retry_tally: RetryTally,
    /// Event tracer; disabled (free) unless the engine arms one for a
    /// run. Emits one event per successful transfer and per injection.
    tracer: Tracer,
}

impl DiskSim {
    /// Creates an empty disk.
    pub fn new() -> Self {
        DiskSim {
            files: Vec::new(),
            pages: Vec::new(),
            page_file: Vec::new(),
            checksums: Vec::new(),
            free_pages: Vec::new(),
            stats: DiskStats::default(),
            fault: None,
            retry: RetryPolicy::default(),
            retry_tally: RetryTally::default(),
            tracer: Tracer::disabled(),
        }
    }
}

impl Default for DiskSim {
    fn default() -> Self {
        DiskSim::new()
    }
}

impl PageStore for DiskSim {
    fn new_file(&mut self, kind: FileKind) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(FileMeta {
            kind,
            pages: Vec::new(),
        });
        id
    }

    fn alloc(&mut self, file: FileId) -> StorageResult<PageId> {
        if file.0 as usize >= self.files.len() {
            return Err(StorageError::UnknownFile(file.0));
        }
        // Reuse space released by drop_file before growing the disk.
        let pid = if let Some(pid) = self.free_pages.pop() {
            self.pages[pid.index()].clear();
            self.checksums[pid.index()] = self.pages[pid.index()].checksum();
            self.page_file[pid.index()] = file;
            pid
        } else {
            let pid = PageId(self.pages.len() as u32);
            let page = Page::new();
            self.checksums.push(page.checksum());
            self.pages.push(page);
            self.page_file.push(file);
            pid
        };
        self.files[file.0 as usize].pages.push(pid);
        Ok(pid)
    }

    fn drop_file(&mut self, file: FileId) -> StorageResult<()> {
        let meta = self
            .files
            .get_mut(file.0 as usize)
            .ok_or(StorageError::UnknownFile(file.0))?;
        self.free_pages.append(&mut meta.pages);
        Ok(())
    }

    /// Physically reads page `pid` into `out`, counting one read.
    ///
    /// With a fault plan armed the attempt may fail instead (transient or
    /// permanent fault), and the page image is checksum-verified so a
    /// torn write surfaces as [`StorageError::ChecksumMismatch`]. Failed
    /// attempts are *not* counted in [`DiskStats`]: the I/O counters keep
    /// recording exactly the successful transfers, so a transient-fault
    /// run reports the same page-I/O metrics as a fault-free one.
    fn read_page(&mut self, pid: PageId, out: &mut Page) -> StorageResult<()> {
        if pid.index() >= self.pages.len() {
            return Err(StorageError::PageOutOfBounds(pid));
        }
        let op = match self.fault.as_mut() {
            Some(plan) => match plan.on_read(pid) {
                Ok(op) => Some(op),
                Err(e) => {
                    self.tracer.emit(Event::FaultInjected {
                        page: pid.0,
                        write: false,
                    });
                    return Err(e);
                }
            },
            None => None,
        };
        out.bytes_mut()
            .copy_from_slice(self.pages[pid.index()].bytes());
        if let Some(op) = op {
            let stored = self.checksums[pid.index()];
            let computed = out.checksum();
            if computed != stored {
                if let Some(plan) = self.fault.as_mut() {
                    plan.on_detection(op, pid);
                }
                self.tracer.emit(Event::CorruptionDetected { page: pid.0 });
                return Err(StorageError::ChecksumMismatch {
                    pid,
                    stored,
                    computed,
                });
            }
        }
        self.stats.reads += 1;
        let file = self.page_file[pid.index()];
        let kind = self.files[file.0 as usize].kind;
        self.stats.reads_by_kind[kind.idx()] += 1;
        self.tracer.emit(Event::PageRead {
            page: pid.0,
            kind: Kind::from_idx(kind.idx()),
        });
        Ok(())
    }

    /// Physically writes `data` to page `pid`, counting one write.
    ///
    /// With a fault plan armed the attempt may fail transiently, or be
    /// *torn*: the call reports success but one stored byte is flipped
    /// while the recorded checksum still describes the intended image, so
    /// the next physical read detects the damage.
    fn write_page(&mut self, pid: PageId, data: &Page) -> StorageResult<()> {
        if pid.index() >= self.pages.len() {
            return Err(StorageError::PageOutOfBounds(pid));
        }
        let corrupt_at = match self.fault.as_mut() {
            Some(plan) => match plan.on_write(pid) {
                Ok((_, off)) => off,
                Err(e) => {
                    self.tracer.emit(Event::FaultInjected {
                        page: pid.0,
                        write: true,
                    });
                    return Err(e);
                }
            },
            None => None,
        };
        // Record the checksum of the bytes the writer intended; a torn
        // write leaves it stale so verification catches the corruption.
        self.checksums[pid.index()] = data.checksum();
        let dst = &mut self.pages[pid.index()];
        dst.bytes_mut().copy_from_slice(data.bytes());
        if let Some(off) = corrupt_at {
            // A torn write is a silent injection: it reports success.
            dst.bytes_mut()[off] ^= 0xFF;
            self.tracer.emit(Event::FaultInjected {
                page: pid.0,
                write: true,
            });
        }
        self.stats.writes += 1;
        let file = self.page_file[pid.index()];
        let kind = self.files[file.0 as usize].kind;
        self.stats.writes_by_kind[kind.idx()] += 1;
        self.tracer.emit(Event::PageWrite {
            page: pid.0,
            kind: Kind::from_idx(kind.idx()),
        });
        Ok(())
    }

    /// Durability is not modeled by the simulator: all pages are always
    /// "persistent" in memory, so `sync` is a counted-nothing no-op.
    fn sync(&mut self) -> StorageResult<()> {
        Ok(())
    }

    fn file_pages(&self, file: FileId) -> &[PageId] {
        &self.files[file.0 as usize].pages
    }

    fn file_kind(&self, file: FileId) -> FileKind {
        self.files[file.0 as usize].kind
    }

    fn page_file(&self, pid: PageId) -> StorageResult<FileId> {
        self.page_file
            .get(pid.index())
            .copied()
            .ok_or(StorageError::PageOutOfBounds(pid))
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn stats(&self) -> &DiskStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn note_retries(&mut self, tally: RetryTally) {
        self.retry_tally.absorb(tally);
    }

    fn retry_tally(&self) -> RetryTally {
        self.retry_tally
    }

    fn backend_name(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    #[test]
    fn alloc_and_rw_counts_io() {
        let mut d = DiskSim::new();
        let f = d.new_file(FileKind::Relation);
        let p = d.alloc(f).unwrap();
        assert_eq!(d.stats().total(), 0, "allocation is free");

        let mut page = Page::new();
        page.put_u32(0, 7);
        d.write_page(p, &page).unwrap();
        let mut back = Page::new();
        d.read_page(p, &mut back).unwrap();
        assert_eq!(back.get_u32(0), 7);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads_by_kind[FileKind::Relation.idx()], 1);
    }

    #[test]
    fn files_track_their_pages() {
        let mut d = DiskSim::new();
        let f1 = d.new_file(FileKind::Relation);
        let f2 = d.new_file(FileKind::SuccessorList);
        let a = d.alloc(f1).unwrap();
        let b = d.alloc(f2).unwrap();
        let c = d.alloc(f1).unwrap();
        assert_eq!(d.file_pages(f1), &[a, c]);
        assert_eq!(d.file_pages(f2), &[b]);
        assert_eq!(d.page_file(b).unwrap(), f2);
        assert_eq!(d.file_kind(f2), FileKind::SuccessorList);
    }

    #[test]
    fn out_of_bounds_page_errors() {
        let mut d = DiskSim::new();
        let mut p = Page::new();
        assert_eq!(
            d.read_page(PageId(3), &mut p),
            Err(StorageError::PageOutOfBounds(PageId(3)))
        );
    }

    #[test]
    fn stats_since_subtracts() {
        let mut d = DiskSim::new();
        let f = d.new_file(FileKind::Temp);
        let p = d.alloc(f).unwrap();
        let page = Page::new();
        d.write_page(p, &page).unwrap();
        let snap = d.stats().clone();
        let mut out = Page::new();
        d.read_page(p, &mut out).unwrap();
        d.read_page(p, &mut out).unwrap();
        let delta = d.stats().since(&snap);
        assert_eq!(delta.reads, 2);
        assert_eq!(delta.writes, 0);
        assert_eq!(delta.reads_by_kind[FileKind::Temp.idx()], 2);
    }

    #[test]
    fn cost_model_estimates() {
        let m = IoCostModel::default();
        assert!((m.estimate_seconds(100) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn direct_pager_charges_every_access() {
        // The Pager surface is the blanket impl over PageStore — one
        // trait-object path, no inherent shims.
        let mut d = DiskSim::new();
        let f = d.create_file(FileKind::Temp);
        let p = d.alloc_page(f).unwrap();
        let mut sink = 0u32;
        d.with_page_mut(p, &mut |pg: &mut Page| pg.put_u32(0, 5))
            .unwrap();
        d.with_page(p, &mut |pg: &Page| sink = pg.get_u32(0))
            .unwrap();
        assert_eq!(sink, 5);
        // with_page_mut = read + write, with_page = read.
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().writes, 1);
    }
}
