//! A minimal wall-clock + metric bench harness (replaces `criterion`).
//!
//! Each benchmark is a closure returning a `u64` *simulation metric*
//! (for this study: simulated page I/O). The harness runs warmup
//! iterations, then `iters` timed iterations, and reports median and p95
//! wall-clock time plus the metric — and verifies the metric is
//! **identical across iterations**, making every `cargo bench` run a
//! determinism check of the simulation.
//!
//! Output is a human-readable table on stderr and one JSON object per
//! benchmark on stdout, so results can be collected with
//! `cargo bench -p tc-bench --bench algorithms > results.jsonl`.
//!
//! Knobs (flags or environment):
//!
//! * `--iters N` / `TC_BENCH_ITERS`   — timed iterations (default 10)
//! * `--warmup N` / `TC_BENCH_WARMUP` — warmup iterations (default 2)
//! * `--test` (passed by `cargo test`) — single iteration, no warmup,
//!   no output: benches double as smoke tests.

use std::time::Instant;

/// One benchmark's aggregated result.
#[derive(Clone, Debug)]
pub struct Record {
    /// Benchmark group (e.g. `full_closure`).
    pub group: String,
    /// Benchmark name within the group (e.g. `BTC`).
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u64,
    /// 95th-percentile wall-clock nanoseconds per iteration.
    pub p95_ns: u64,
    /// 99th-percentile wall-clock nanoseconds per iteration. With few
    /// iterations this equals the maximum (nearest-rank estimate).
    pub p99_ns: u64,
    /// Minimum wall-clock nanoseconds per iteration.
    pub min_ns: u64,
    /// Extra configured quantiles as `(per-mille, ns)` — e.g. `(999,
    /// ns)` for p99.9. Empty unless [`Runner::with_quantiles`] was
    /// used.
    pub quantiles: Vec<(u32, u64)>,
    /// The simulation metric, if stable across all iterations.
    pub metric: Option<u64>,
}

impl Record {
    /// Renders a per-mille quantile key: `999` → `p99.9`, `990` → `p99`.
    fn quantile_key(permille: u32) -> String {
        if permille % 10 == 0 {
            format!("p{}", permille / 10)
        } else {
            format!("p{}.{}", permille / 10, permille % 10)
        }
    }

    fn json(&self) -> String {
        let metric = match self.metric {
            Some(m) => m.to_string(),
            None => "null".to_string(),
        };
        let extra = if self.quantiles.is_empty() {
            String::new()
        } else {
            let body: Vec<String> = self
                .quantiles
                .iter()
                .map(|&(q, ns)| format!("\"{}\":{ns}", Record::quantile_key(q)))
                .collect();
            format!(",\"quantiles\":{{{}}}", body.join(","))
        };
        format!(
            "{{\"group\":\"{}\",\"name\":\"{}\",\"iters\":{},\"median_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"metric\":{}{}}}",
            self.group,
            self.name,
            self.iters,
            self.median_ns,
            self.p95_ns,
            self.p99_ns,
            self.min_ns,
            metric,
            extra
        )
    }
}

/// The top-level harness: construct once per bench binary with
/// [`Runner::from_env`], add groups, then [`Runner::finish`].
pub struct Runner {
    warmup: u32,
    iters: u32,
    smoke: bool,
    extra_quantiles: Vec<u32>,
    records: Vec<Record>,
}

impl Runner {
    /// Reads configuration from argv and the environment (see module
    /// docs). `--test`/`--list` (passed by `cargo test`) selects smoke
    /// mode: one iteration, no warmup, no report.
    pub fn from_env() -> Runner {
        let args: Vec<String> = std::env::args().collect();
        let flag = |name: &str| -> Option<u32> {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        let env = |key: &str| -> Option<u32> { std::env::var(key).ok()?.parse().ok() };
        let smoke = args.iter().any(|a| a == "--test" || a == "--list");
        Runner {
            warmup: flag("--warmup")
                .or_else(|| env("TC_BENCH_WARMUP"))
                .unwrap_or(2),
            iters: flag("--iters")
                .or_else(|| env("TC_BENCH_ITERS"))
                .unwrap_or(10)
                .max(1),
            smoke,
            extra_quantiles: Vec::new(),
            records: Vec::new(),
        }
    }

    /// A fully explicit runner (tests).
    pub fn new(warmup: u32, iters: u32) -> Runner {
        Runner {
            warmup,
            iters: iters.max(1),
            smoke: false,
            extra_quantiles: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Builder-style: report additional quantiles on every record,
    /// given in per-mille (`999` = p99.9, `250` = p25). Median, p95,
    /// p99 and min are always reported; this extends the list.
    pub fn with_quantiles(mut self, permille: &[u32]) -> Runner {
        self.extra_quantiles = permille.iter().map(|&q| q.min(1000)).collect();
        self
    }

    /// Starts a named group of benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
        }
    }

    fn run_one(&mut self, group: &str, name: &str, f: &mut dyn FnMut() -> u64) {
        let (warmup, iters) = if self.smoke {
            (0, 1)
        } else {
            (self.warmup, self.iters)
        };
        for _ in 0..warmup {
            std::hint::black_box(f());
        }
        let mut times = Vec::with_capacity(iters as usize);
        let mut metric: Option<u64> = None;
        let mut stable = true;
        for _ in 0..iters {
            let start = Instant::now();
            let m = std::hint::black_box(f());
            times.push(start.elapsed().as_nanos() as u64);
            match metric {
                None => metric = Some(m),
                Some(prev) if prev != m => stable = false,
                _ => {}
            }
        }
        if !stable {
            eprintln!(
                "WARNING: {group}/{name}: metric varied across iterations — simulation is \
                 nondeterministic"
            );
        }
        times.sort_unstable();
        let pick = |q: f64| times[((times.len() - 1) as f64 * q).round() as usize];
        self.records.push(Record {
            group: group.to_string(),
            name: name.to_string(),
            iters,
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            p99_ns: pick(0.99),
            min_ns: times[0],
            quantiles: self
                .extra_quantiles
                .iter()
                .map(|&q| (q, pick(q as f64 / 1000.0)))
                .collect(),
            metric: if stable { metric } else { None },
        });
    }

    /// Prints the table (stderr) and JSON lines (stdout). In smoke mode
    /// (`cargo test`) prints nothing — the benches act as assertions
    /// only.
    pub fn finish(self) {
        if self.smoke {
            return;
        }
        eprintln!(
            "\n{:<24} {:<16} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "group", "bench", "median", "p95", "p99", "min", "metric"
        );
        for r in &self.records {
            eprintln!(
                "{:<24} {:<16} {:>12} {:>12} {:>12} {:>12} {:>12}",
                r.group,
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.p95_ns),
                fmt_ns(r.p99_ns),
                fmt_ns(r.min_ns),
                r.metric
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "unstable".into()),
            );
        }
        for r in &self.records {
            println!("{}", r.json());
        }
    }

    /// The records accumulated so far (tests / programmatic use).
    pub fn records(&self) -> &[Record] {
        &self.records
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
}

impl Group<'_> {
    /// Times `f` and records its result under this group.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut() -> u64) -> &mut Self {
        let group = self.name.clone();
        self.runner.run_one(&group, name, &mut f);
        self
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_stable_metric_and_quantiles() {
        let mut r = Runner::new(1, 5);
        r.group("g").bench("constant", || 42);
        let rec = &r.records()[0];
        assert_eq!(rec.metric, Some(42));
        assert_eq!(rec.iters, 5);
        assert!(rec.min_ns <= rec.median_ns && rec.median_ns <= rec.p95_ns);
        assert!(rec.p95_ns <= rec.p99_ns);
        assert!(rec.quantiles.is_empty());
    }

    #[test]
    fn configurable_quantiles_are_reported_in_order() {
        let mut r = Runner::new(0, 10).with_quantiles(&[250, 999]);
        r.group("g").bench("constant", || 1);
        let rec = &r.records()[0];
        assert_eq!(rec.quantiles.len(), 2);
        assert_eq!((rec.quantiles[0].0, rec.quantiles[1].0), (250, 999));
        assert!(rec.quantiles[0].1 <= rec.quantiles[1].1);
        assert!(
            rec.json().contains("\"quantiles\":{\"p25\":"),
            "{}",
            rec.json()
        );
        assert!(rec.json().contains("\"p99.9\":"), "{}", rec.json());
    }

    #[test]
    fn flags_unstable_metric() {
        let mut r = Runner::new(0, 3);
        let mut x = 0u64;
        r.group("g").bench("varying", || {
            x += 1;
            x
        });
        assert_eq!(r.records()[0].metric, None);
    }

    #[test]
    fn json_shape() {
        let mut rec = Record {
            group: "g".into(),
            name: "b".into(),
            iters: 3,
            median_ns: 10,
            p95_ns: 12,
            p99_ns: 13,
            min_ns: 9,
            quantiles: Vec::new(),
            metric: Some(7),
        };
        assert_eq!(
            rec.json(),
            "{\"group\":\"g\",\"name\":\"b\",\"iters\":3,\"median_ns\":10,\"p95_ns\":12,\"p99_ns\":13,\"min_ns\":9,\"metric\":7}"
        );
        rec.quantiles = vec![(999, 14)];
        assert_eq!(
            rec.json(),
            "{\"group\":\"g\",\"name\":\"b\",\"iters\":3,\"median_ns\":10,\"p95_ns\":12,\"p99_ns\":13,\"min_ns\":9,\"metric\":7,\"quantiles\":{\"p99.9\":14}}"
        );
    }
}
