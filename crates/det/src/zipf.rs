//! A seeded Zipf-like sampler over `0..n` (replaces `rand_distr::Zipf`).
//!
//! Serving workloads are skewed: a few hot sources attract most of the
//! queries. The classic model is the Zipf distribution — rank `i`
//! (0-based) is drawn with probability proportional to `1 / (i+1)^theta`.
//! `theta = 0` degenerates to uniform; `theta ≈ 1` is the textbook
//! "80/20" web-traffic shape.
//!
//! The implementation precomputes the cumulative distribution once and
//! samples by binary search on a single [`Rng::f64`] draw, so a given
//! (n, theta, seed) triple always produces the same rank stream — the
//! property the serve-layer load generator pins in its golden tests.

use crate::rng::Rng;

/// A precomputed Zipf distribution over the ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// `cdf[i]` = P(rank ≤ i); monotone, `cdf[n-1] == 1.0`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the distribution for `n` ranks with skew `theta ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite — both are
    /// configuration errors, not data conditions.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf skew must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against accumulated rounding at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n` using a single `f64` from `rng`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        // First index whose cumulative mass reaches the draw.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = Rng::from_seed(1);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "uniform draw skewed: {counts:?}");
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = Rng::from_seed(7);
        let mut head = 0usize;
        for _ in 0..2000 {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With theta = 1.2 the top decile carries well over half the mass.
        assert!(head > 1200, "only {head}/2000 draws hit the top 10 ranks");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let z = Zipf::new(50, 0.9);
        let draw = |seed| {
            let mut rng = Rng::from_seed(seed);
            (0..32).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = Rng::from_seed(9);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
