//! `tc-det` — the determinism toolkit of the transitive-closure study.
//!
//! The paper's methodology (and this reproduction's value) rests on
//! *bit-reproducible* experiments: the same seed must generate the same
//! DAG workload and the same page-I/O counts on every machine, forever.
//! External crates version-drift and resolve against a registry; this
//! crate has **zero dependencies** and pins every random bit the
//! workspace consumes. It provides three small pieces:
//!
//! * [`rng`] — a seeded PRNG: SplitMix64 seed expansion feeding
//!   xoshiro256++, with a `rand`-flavoured API ([`Rng::from_seed`],
//!   [`Rng::random_range`], [`Rng::fill`], [`Rng::shuffle`]). Replaces
//!   `rand`.
//! * [`check`] — a mini property-testing harness: seeded case loop,
//!   tunable case count (`TC_DET_CASES`), greedy shrinking and
//!   failing-seed replay (`TC_DET_SEED`). Replaces `proptest`.
//! * [`bench`] — a wall-clock + simulation-metric bench harness with
//!   warmup, median/p95 and JSON output, which also asserts the metric
//!   is identical across iterations. Replaces `criterion`.
//!
//! ## Seeding conventions
//!
//! * Workload generators take an explicit `u64` seed; the paper's 5
//!   instances per graph family use seeds `1..=5`.
//! * Derived streams (e.g. back-arc injection on top of a generated DAG)
//!   use `seed ^ CONSTANT` or [`Rng::fork`], never the same stream.
//! * Anything that perturbs a simulation result must flow from one of
//!   these seeds — wall-clock time and addresses must never leak into
//!   simulated metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod rng;

pub use check::Checker;
pub use rng::{splitmix64, Rng};
