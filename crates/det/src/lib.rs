//! `tc-det` — the determinism toolkit of the transitive-closure study.
//!
//! The paper's methodology (and this reproduction's value) rests on
//! *bit-reproducible* experiments: the same seed must generate the same
//! DAG workload and the same page-I/O counts on every machine, forever.
//! External crates version-drift and resolve against a registry; this
//! crate has **zero dependencies** and pins every random bit the
//! workspace consumes. It provides three small pieces:
//!
//! * [`rng`] — a seeded PRNG: SplitMix64 seed expansion feeding
//!   xoshiro256++, with a `rand`-flavoured API ([`Rng::from_seed`],
//!   [`Rng::random_range`], [`Rng::fill`], [`Rng::shuffle`]). Replaces
//!   `rand`.
//! * [`check`] — a mini property-testing harness: seeded case loop,
//!   tunable case count (`TC_DET_CASES`), greedy shrinking and
//!   failing-seed replay (`TC_DET_SEED`). Replaces `proptest`.
//! * [`bench`] — a wall-clock + simulation-metric bench harness with
//!   warmup, median/p95 and JSON output, which also asserts the metric
//!   is identical across iterations. Replaces `criterion`.
//!
//! ## Seeding conventions
//!
//! * Workload generators take an explicit `u64` seed; the paper's 5
//!   instances per graph family use seeds `1..=5`.
//! * Derived streams (e.g. back-arc injection on top of a generated DAG)
//!   use `seed ^ CONSTANT` or [`Rng::fork`], never the same stream.
//! * Anything that perturbs a simulation result must flow from one of
//!   these seeds — wall-clock time and addresses must never leak into
//!   simulated metrics.
//!
//! ## Cell seeding (parallel experiment grids)
//!
//! The experiment harness decomposes sweeps into independent *cells*
//! (one graph instance × source set × algorithm × config each) and may
//! execute them on any number of worker threads. Randomness consumed
//! inside a cell must therefore be a pure function of the cell's
//! *coordinates*, never of scheduling order:
//!
//! * Derive the cell's seed with [`rng::cell_seed`]`(STREAM, &coords)`,
//!   where `STREAM` is a per-purpose constant and `coords` the cell's
//!   canonical coordinates, then start a fresh [`Rng::from_seed`].
//! * Never [`Rng::fork`] a shared generator *across* cells — fork order
//!   would then encode the (nondeterministic) execution interleaving.
//!   Forking is fine *within* one cell, where consumption is sequential.
//!
//! Under this convention a sweep's results are bit-identical at any
//! worker count, which is what `tests/parallel_determinism.rs` and the
//! CI `parallel-matrix` job enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod rng;
pub mod zipf;

pub use check::Checker;
pub use rng::{cell_seed, splitmix64, Rng};
pub use zipf::Zipf;
