//! Seeded, portable pseudo-random number generation.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded by
//! expanding a single `u64` through **SplitMix64** — the combination the
//! xoshiro authors recommend. Both algorithms are defined purely in terms
//! of 64-bit wrapping integer arithmetic, so a given seed produces the
//! same stream on every platform, architecture and compiler. That
//! bit-reproducibility is what makes the study's workloads and page-I/O
//! numbers comparable across machines.
//!
//! ```
//! use tc_det::Rng;
//! let mut a = Rng::from_seed(7);
//! let mut b = Rng::from_seed(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.random_range(10..20u32);
//! assert!((10..20).contains(&x));
//! ```

/// SplitMix64 step: mixes `state` and returns the next output.
///
/// Used for seed expansion and for deriving independent case seeds in the
/// property harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the canonical seed for one *cell* of an experiment grid.
///
/// This is the workspace's cell-seeding convention (see the crate docs):
/// a parallel scheduler must never hand cells forks of a shared stream —
/// fork order would then depend on scheduling order, and the sweep would
/// stop being reproducible. Instead, every cell derives its seed as a
/// pure function of a stream constant (`base`, one per logical stream)
/// and the cell's coordinates, by chaining SplitMix64 over them. The
/// result feeds [`Rng::from_seed`]; [`Rng::fork`] is then safe *within*
/// the cell, where consumption order is sequential again.
///
/// ```
/// use tc_det::rng::cell_seed;
/// // (family, instance, set) coordinates; order matters, values commute nowhere.
/// let a = cell_seed(0xDA12_1994, &[4, 0, 1]);
/// assert_eq!(a, cell_seed(0xDA12_1994, &[4, 0, 1]));
/// assert_ne!(a, cell_seed(0xDA12_1994, &[4, 1, 0]));
/// assert_ne!(a, cell_seed(0xBEEF, &[4, 0, 1]));
/// ```
pub fn cell_seed(base: u64, coords: &[u64]) -> u64 {
    let mut state = base;
    let mut out = splitmix64(&mut state);
    for &c in coords {
        // Fold each coordinate into the state before mixing so that
        // permuted coordinates yield unrelated streams.
        state ^= c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        out = splitmix64(&mut state);
    }
    out
}

/// A deterministic xoshiro256++ generator with a `rand`-flavoured API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    ///
    /// Distinct seeds — including adjacent ones like 0, 1, 2 — yield
    /// statistically independent streams.
    pub fn from_seed(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator (for per-case / per-stream
    /// seeding without consuming much of the parent's stream).
    pub fn fork(&mut self) -> Rng {
        Rng::from_seed(self.next_u64())
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits (upper half of the stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform value in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on an empty range, like `rand`.
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, bound)` by Lemire's unbiased multiply-shift
    /// rejection method.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-high, rejecting the biased low fringe.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fills `dest` with uniformly random bytes.
    pub fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    /// Uniform Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }
}

/// Ranges an [`Rng`] can sample uniformly. Implemented for `Range` and
/// `RangeInclusive` over the common integer types.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream() {
        // xoshiro256++ seeded with SplitMix64(1234567): golden first
        // outputs, locking the implementation against silent drift.
        let mut rng = Rng::from_seed(1234567);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Rng::from_seed(1234567);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_eq!(first[0], 0x0610_E053_DD55_AB68);
        assert_eq!(first[1], 0x70C9_79E2_6E27_FBAC);
    }

    #[test]
    fn splitmix_reference() {
        // Golden values from the SplitMix64 reference implementation
        // (Steele, Lea & Flood), seed 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Rng::from_seed(3);
        for _ in 0..10_000 {
            let a = rng.random_range(5..17u32);
            assert!((5..17).contains(&a));
            let b = rng.random_range(0..=3usize);
            assert!(b <= 3);
            let c = rng.random_range(7..8u64);
            assert_eq!(c, 7);
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut rng = Rng::from_seed(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::from_seed(0).random_range(5..5u32);
    }

    #[test]
    fn fill_deterministic_and_full() {
        let mut a = Rng::from_seed(9);
        let mut b = Rng::from_seed(9);
        let (mut x, mut y) = ([0u8; 13], [0u8; 13]);
        a.fill(&mut x);
        b.fill(&mut y);
        assert_eq!(x, y);
        assert!(x.iter().any(|&v| v != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::from_seed(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 21 should not yield identity shuffle");
    }

    #[test]
    fn forks_are_independent() {
        let mut parent = Rng::from_seed(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn mean_of_f64_is_centered() {
        let mut rng = Rng::from_seed(77);
        let mean: f64 = (0..20_000).map(|_| rng.f64()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
