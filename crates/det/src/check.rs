//! A miniature property-testing harness (seeded, deterministic).
//!
//! Replaces the external `proptest` dependency for this workspace's
//! needs: a seeded case loop, tunable case count, simple value
//! generators, failing-seed reporting and greedy input shrinking.
//!
//! A property is a closure `Fn(&T) -> Result<(), String>` over a
//! generated input `T`; assertions inside it use the [`require!`] /
//! [`require_eq!`] macros (which return an `Err` instead of panicking, so
//! the harness can shrink the input before reporting).
//!
//! ```
//! use tc_det::check::{shrink_vec, Checker};
//! use tc_det::{require, Rng};
//!
//! Checker::new("reverse_is_involutive").cases(32).run(
//!     |rng| tc_det::check::vec_of(rng, 0..20, |r| r.next_u32()),
//!     shrink_vec,
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         require!(&w == v, "double reverse changed {v:?}");
//!         Ok(())
//!     },
//! );
//! ```
//!
//! Environment knobs (both optional):
//!
//! * `TC_DET_CASES` — override the per-property case count.
//! * `TC_DET_SEED`  — replay a single failing case seed, as printed in a
//!   failure report.

use crate::rng::{splitmix64, Rng, SampleRange};
use std::fmt::Debug;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Runs one property over many seeded random cases.
pub struct Checker {
    name: &'static str,
    cases: u32,
    seed: u64,
    max_shrink_steps: u32,
}

impl Checker {
    /// A checker named after the property (used in failure reports).
    pub fn new(name: &'static str) -> Checker {
        Checker {
            name,
            cases: env_u64("TC_DET_CASES")
                .map(|c| c as u32)
                .unwrap_or(DEFAULT_CASES),
            seed: 0xDA12_1994, // Dar & Ramakrishnan, SIGMOD 1994
            max_shrink_steps: 2000,
        }
    }

    /// Sets the case count (overridden by `TC_DET_CASES`).
    pub fn cases(mut self, cases: u32) -> Checker {
        if env_u64("TC_DET_CASES").is_none() {
            self.cases = cases;
        }
        self
    }

    /// Sets the base seed from which all case seeds are derived.
    pub fn seed(mut self, seed: u64) -> Checker {
        self.seed = seed;
        self
    }

    /// Runs the property: generate with `generate`, on failure greedily
    /// shrink via `shrink` (candidate simpler inputs; first failing
    /// candidate is adopted, repeated to a fixpoint), then panic with the
    /// minimal input, the error, and the failing case seed.
    pub fn run<T, G, S, P>(&self, generate: G, shrink: S, prop: P)
    where
        T: Clone + Debug,
        G: Fn(&mut Rng) -> T,
        S: Fn(&T) -> Vec<T>,
        P: Fn(&T) -> Result<(), String>,
    {
        if let Some(replay) = env_u64("TC_DET_SEED") {
            self.run_case(replay, 0, &generate, &shrink, &prop);
            return;
        }
        let mut state = self.seed;
        for case in 0..self.cases {
            let case_seed = splitmix64(&mut state);
            self.run_case(case_seed, case, &generate, &shrink, &prop);
        }
    }

    fn run_case<T, G, S, P>(&self, case_seed: u64, case: u32, generate: &G, shrink: &S, prop: &P)
    where
        T: Clone + Debug,
        G: Fn(&mut Rng) -> T,
        S: Fn(&T) -> Vec<T>,
        P: Fn(&T) -> Result<(), String>,
    {
        let mut rng = Rng::from_seed(case_seed);
        let input = generate(&mut rng);
        let Err(first_err) = prop(&input) else {
            return;
        };
        // Greedy shrink: walk to a locally minimal failing input.
        let mut best = input;
        let mut best_err = first_err.clone();
        let mut steps = 0;
        'outer: while steps < self.max_shrink_steps {
            for candidate in shrink(&best) {
                steps += 1;
                if let Err(e) = prop(&candidate) {
                    best = candidate;
                    best_err = e;
                    continue 'outer;
                }
                if steps >= self.max_shrink_steps {
                    break;
                }
            }
            break;
        }
        panic!(
            "property `{}` failed at case {case} (after {steps} shrink steps)\n\
             minimal input: {best:?}\n\
             error: {best_err}\n\
             original error: {first_err}\n\
             replay with: TC_DET_SEED={case_seed} cargo test -q {}",
            self.name, self.name,
        );
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A vector with length drawn from `len` and elements from `element`.
pub fn vec_of<T, R, F>(rng: &mut Rng, len: R, mut element: F) -> Vec<T>
where
    R: SampleRange<usize>,
    F: FnMut(&mut Rng) -> T,
{
    let n = rng.random_range(len);
    (0..n).map(|_| element(rng)).collect()
}

/// A random arc list over `0..n`: up to `max_arcs` uniform `(u, v)` pairs
/// (self-loops and duplicates included — filter in the property if the
/// graph under test needs a DAG).
pub fn arc_list(rng: &mut Rng, n: u32, max_arcs: usize) -> Vec<(u32, u32)> {
    vec_of(rng, 0..max_arcs.max(1), |r| {
        (r.random_range(0..n), r.random_range(0..n))
    })
}

// ---------------------------------------------------------------------
// Shrinkers
// ---------------------------------------------------------------------

/// No shrinking (for inputs that are already scalar-simple).
pub fn shrink_none<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Shrink candidates for a vector: drop the back half, the front half,
/// and each of up to 24 evenly spaced single elements. Greedy iteration
/// in [`Checker::run`] drives this to a locally minimal failing vector.
pub fn shrink_vec<T: Clone>(v: &Vec<T>) -> Vec<Vec<T>> {
    let n = v.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    if n > 1 {
        out.push(v[..n / 2].to_vec());
        out.push(v[n - n / 2..].to_vec());
    }
    let stride = (n / 24).max(1);
    for i in (0..n).step_by(stride) {
        let mut w = v.clone();
        w.remove(i);
        out.push(w);
    }
    out
}

/// Shrink candidates for an unsigned scalar: 0, halves, and decrements.
pub fn shrink_u64(x: &u64) -> Vec<u64> {
    let x = *x;
    if x == 0 {
        return Vec::new();
    }
    let mut out = vec![0, x / 2, x - 1];
    out.dedup();
    out
}

/// Asserts a condition inside a property, formatting the message lazily.
#[macro_export]
macro_rules! require {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("requirement failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, showing both sides on failure.
#[macro_export]
macro_rules! require_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        Checker::new("count").cases(17).run(
            |rng| rng.next_u64(),
            shrink_u64,
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 17);
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        // Property "no vector contains an element >= 100" fails; the
        // minimal counterexample is a single offending element.
        let caught = std::panic::catch_unwind(|| {
            Checker::new("shrinks").cases(50).run(
                |rng| vec_of(rng, 0..40, |r| r.random_range(0..200u32)),
                shrink_vec,
                |v| {
                    require!(v.iter().all(|&x| x < 100), "element >= 100 in {v:?}");
                    Ok(())
                },
            );
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal input: ["), "{msg}");
        assert!(msg.contains("TC_DET_SEED="), "{msg}");
        // Locally minimal = exactly one element survives shrinking.
        let inner = msg.split("minimal input: [").nth(1).unwrap();
        let list = inner.split(']').next().unwrap();
        assert_eq!(list.split(',').count(), 1, "not minimal: [{list}]");
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let v = std::cell::RefCell::new(Vec::new());
            Checker::new("det").cases(8).run(
                |rng| rng.next_u64(),
                shrink_none,
                |x| {
                    v.borrow_mut().push(*x);
                    Ok(())
                },
            );
            v.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn generators_cover_shapes() {
        let mut rng = Rng::from_seed(1);
        let arcs = arc_list(&mut rng, 10, 50);
        assert!(arcs.iter().all(|&(u, v)| u < 10 && v < 10));
        let v = vec_of(&mut rng, 5..6, |r| r.next_u32());
        assert_eq!(v.len(), 5);
    }
}
