//! Reachability index end to end: decompose a DAG into concurrent
//! chains, persist the interval labels, answer point probes, then run
//! the same index as the engine's ninth algorithm (`REACHINDEX`) and
//! compare its I/O against BJ on the same workload.
//!
//! ```text
//! cargo run --release --example reach_quickstart
//! ```

use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::reach::{NullMeter, ReachIndex, NO_POS};
use tc_study::storage::DiskSim;
use tc_study::trace::Tracer;

fn main() {
    // A small instance of the paper's G5 parameterization (seeded, so
    // this example prints the same numbers on every machine).
    let graph = DagGenerator::new(500, 4.0, 100).seed(7).generate();

    // 1. Build: condense the graph, partition the condensation DAG into
    //    k concurrent chains (greedy path cover in topological order),
    //    compute the k-entry interval-label row of every vertex, and
    //    persist chains + labels through the paged store.
    let mut disk = DiskSim::new();
    let idx = ReachIndex::build(&mut disk, &graph, &Tracer::disabled(), &mut NullMeter)
        .expect("build index");
    println!(
        "index: {} components on k = {} chains, {} label entries",
        idx.condensation().component_count(),
        idx.width(),
        idx.label_entries(),
    );

    // 2. Probe: reach(u, v) is one label lookup — v is reachable from u
    //    iff u's label on v's chain is at or before v's position.
    let (u, v) = (11, 477);
    println!("reach({u}, {v}) = {}", idx.reach_mem(u, v));
    let row_finite = idx
        .labels()
        .row(idx.component(u))
        .iter()
        .filter(|&&p| p != NO_POS)
        .count();
    println!("source {u} sees {row_finite} of {} chains", idx.width());

    // 3. Engine: the same index as the ninth algorithm, through the
    //    standard two-phase run — restructuring builds and persists the
    //    index, computation scans one label row and its chain suffixes
    //    per source. Compare against BJ, the paper's all-round winner.
    let cfg = SystemConfig::with_buffer(20);
    let query = Query::partial(vec![11, 203, 477]);
    let mut db = Database::build(&graph, true).expect("load database");
    for algo in [Algorithm::ReachIndex, Algorithm::Bj] {
        let res = db.run(&query, algo, &cfg).expect("run");
        println!(
            "{:<10} restructure {:>6} I/O, compute {:>6} I/O, {} answer tuples",
            algo.name(),
            res.metrics.restructure_io.total(),
            res.metrics.compute_io.total(),
            res.metrics.answer_tuples,
        );
    }
}
