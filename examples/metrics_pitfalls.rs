//! The paper's methodological warning (§7), as a runnable demonstration:
//! tuple-level cost metrics do not predict page I/O.
//!
//! Two concrete reversals from the study:
//!
//! 1. By duplicates generated (or tuple I/O), the Spanning Tree algorithm
//!    looks much better than BTC for full closure — yet it performs
//!    *more* page I/O (Figure 7).
//! 2. By distinct tuples derived, Compute_Tree (JKB2) looks better than
//!    BTC for every selective query — yet on wide graphs it performs
//!    2–3× the page I/O; by union counts the opposite mistake is made
//!    (Figures 8–10).
//!
//! ```text
//! cargo run --release --example metrics_pitfalls
//! ```

use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

fn main() {
    let cfg = SystemConfig::with_buffer(10);

    banner("Reversal 1: SPN vs BTC on full closure (G9-family graph)");
    let g = DagGenerator::new(2000, 20.0, 2000).seed(3).generate();
    let mut db = Database::build(&g, false).expect("load");
    let btc = db.run(&Query::full(), Algorithm::Btc, &cfg).expect("btc");
    let spn = db.run(&Query::full(), Algorithm::Spn, &cfg).expect("spn");
    println!(
        "                {:>12} {:>12}\n\
         duplicates     {:>12} {:>12}   <- SPN 'wins'\n\
         tuple reads    {:>12} {:>12}   <- SPN 'wins'\n\
         page I/O       {:>12} {:>12}   <- BTC actually wins",
        "BTC",
        "SPN",
        btc.metrics.duplicates,
        spn.metrics.duplicates,
        btc.metrics.tuple_reads,
        spn.metrics.tuple_reads,
        btc.metrics.total_io(),
        spn.metrics.total_io(),
    );
    assert!(spn.metrics.duplicates < btc.metrics.duplicates);
    assert!(spn.metrics.total_io() > btc.metrics.total_io());

    banner("Reversal 2: JKB2 vs BTC on a selective query (wide G12-family graph)");
    let g = DagGenerator::new(2000, 50.0, 2000).seed(3).generate();
    let mut db = Database::build(&g, true).expect("load");
    let q = Query::partial((0..20).collect());
    let btc = db.run(&q, Algorithm::Btc, &cfg).expect("btc");
    let jkb2 = db.run(&q, Algorithm::Jkb2, &cfg).expect("jkb2");
    println!(
        "                {:>12} {:>12}\n\
         tuples         {:>12} {:>12}   <- JKB2 'wins'\n\
         unions         {:>12} {:>12}   <- BTC 'wins'\n\
         page I/O       {:>12} {:>12}   <- neither metric told you this",
        "BTC",
        "JKB2",
        btc.metrics.tuples_generated,
        jkb2.metrics.tuples_generated,
        btc.metrics.unions,
        jkb2.metrics.unions,
        btc.metrics.total_io(),
        jkb2.metrics.total_io(),
    );
    assert!(jkb2.metrics.tuples_generated < btc.metrics.tuples_generated);
    assert!(jkb2.metrics.unions > btc.metrics.unions);

    println!(
        "\nConclusion (paper §7): \"a reliable evaluation of the page I/O cost of a\n\
         transitive closure computation can only be obtained via a performance study\n\
         that directly considers that I/O cost.\""
    );
}
