//! Impact analysis over a software dependency graph.
//!
//! The motivating workload class for database transitive closure: given a
//! package ecosystem with `depends-on` edges, a security team asks "which
//! packages are transitively affected if these packages ship a
//! vulnerability?" — a partial transitive closure over the *reverse*
//! dependency graph. Mutual (cyclic) dependencies are handled the way the
//! paper prescribes (§1): condense strongly connected components first,
//! compute the closure of the acyclic condensation, and expand.
//!
//! ```text
//! cargo run --release --example package_deps
//! ```

use tc_study::core::prelude::*;
use tc_study::graph::{condensation, Graph, NodeId};

/// Builds a synthetic package ecosystem: `core` libraries at the bottom,
/// frameworks in the middle, applications on top, plus a few mutually
/// dependent framework pairs (cycles).
fn ecosystem(cores: usize, frameworks: usize, apps: usize) -> (Graph, Vec<String>) {
    let n = cores + frameworks + apps;
    let mut names = Vec::with_capacity(n);
    let mut arcs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut rng: u64 = 0xFEED;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for i in 0..cores {
        names.push(format!("core-{i}"));
    }
    for i in 0..frameworks {
        let me = (cores + i) as NodeId;
        names.push(format!("framework-{i}"));
        // Each framework depends on a few cores.
        for _ in 0..3 {
            arcs.push((me, (next() % cores as u64) as NodeId));
        }
        // Some framework pairs depend on each other (a cycle).
        if i % 7 == 1 {
            arcs.push((me, me - 1));
            arcs.push((me - 1, me));
        } else if i > 0 {
            arcs.push((me, cores as NodeId + (next() % i as u64) as NodeId));
        }
    }
    for i in 0..apps {
        let me = (cores + frameworks + i) as NodeId;
        names.push(format!("app-{i}"));
        for _ in 0..4 {
            arcs.push((me, cores as NodeId + (next() % frameworks as u64) as NodeId));
        }
    }
    (Graph::from_arcs(n, arcs), names)
}

fn main() {
    let (deps, names) = ecosystem(60, 140, 600);
    println!(
        "ecosystem: {} packages, {} dependency edges, acyclic: {}",
        deps.n(),
        deps.arc_count(),
        deps.is_acyclic()
    );

    // Impact flows *against* dependency edges: affected(X) = packages
    // that can reach X. Reverse the graph so it becomes plain
    // reachability.
    let impact = deps.reversed();
    println!(
        "condensation: {} components ({} packages collapsed into cycles)",
        condensation(&impact).component_count(),
        impact.n() - condensation(&impact).component_count()
    );

    // Vulnerable packages: two core libraries.
    let vulnerable: Vec<NodeId> = vec![3, 17];
    let query = Query::partial(vulnerable.clone());
    let cfg = SystemConfig::with_buffer(10);

    // `run_cyclic` packages the paper's §1 prescription: condense, run
    // the disk-based engine on the condensation, expand the answer.
    println!("\nalgorithm comparison for the impact query:");
    type Best = (Algorithm, u64, Vec<(NodeId, NodeId)>);
    let mut best: Option<Best> = None;
    for algo in [
        Algorithm::Btc,
        Algorithm::Bj,
        Algorithm::Jkb2,
        Algorithm::Srch,
    ] {
        let res = run_cyclic(&impact, &query, algo, &cfg).expect("run");
        println!(
            "  {:>5}: {:>6} page I/O ({} impacted-package facts)",
            algo.name(),
            res.metrics.total_io(),
            res.answer.len()
        );
        if best
            .as_ref()
            .is_none_or(|&(_, io, _)| res.metrics.total_io() < io)
        {
            best = Some((algo, res.metrics.total_io(), res.answer));
        }
    }
    let (algo, _, answer) = best.expect("ran algorithms");

    let mut impacted: Vec<NodeId> = answer
        .into_iter()
        .map(|(_, v)| v)
        .filter(|v| !vulnerable.contains(v))
        .collect();
    impacted.sort_unstable();
    impacted.dedup();
    println!(
        "\n{} packages are transitively affected by a CVE in {{{}}} (cheapest: {algo});\nfirst few: {}",
        impacted.len(),
        vulnerable
            .iter()
            .map(|&v| names[v as usize].clone())
            .collect::<Vec<_>>()
            .join(", "),
        impacted
            .iter()
            .take(6)
            .map(|&v| names[v as usize].clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
