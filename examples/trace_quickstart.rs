//! The observability layer end to end: capture a run's event trace,
//! replay it back into the full metric suite, and export it as JSONL.
//!
//! ```text
//! cargo run --release --example trace_quickstart
//! ```

use std::io::BufWriter;
use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::trace::{digest_events, replay, JsonlSink, Tracer, VecSink};

fn main() {
    // A small instance of the paper's G5 parameterization (seeded, so
    // this example prints the same numbers on every machine).
    let graph = DagGenerator::new(500, 4.0, 100).seed(7).generate();
    let mut db = Database::build(&graph, false).expect("load database");

    // 1. Capture: attach a VecSink through the system configuration.
    //    Every counted unit of work — page transfers, buffer hits,
    //    unions, generated tuples, answer emissions — becomes one typed
    //    event in the sink.
    let sink = Arc::new(VecSink::unbounded());
    let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(sink.clone()));
    let res = db
        .run(&Query::partial(vec![3, 141]), Algorithm::Btc, &cfg)
        .expect("run BTC");
    let events = sink.events();
    println!(
        "captured {} events ({} page I/Os, {} answer tuples)",
        events.len(),
        res.metrics.total_io(),
        res.metrics.answer_tuples,
    );

    // 2. Replay: fold the stream back into metrics. This is an
    //    independent code path from the engine's snapshot-delta
    //    accounting, and the two must agree field by field — the
    //    machine-checked contract behind tests/trace_replay.rs.
    let replayed = replay(events.iter().cloned()).expect("replay trace");
    let expected = res.metrics.to_replayed();
    assert_eq!(replayed, expected, "replay(trace) != metrics");
    println!(
        "replay(trace) == metrics ✓  (total_io {}, unions {}, hit ratio {:.3})",
        replayed.total_io(),
        replayed.unions,
        replayed.buffer.hits as f64 / replayed.buffer.requests.max(1) as f64,
    );

    // 3. Digest: traces are deterministic (no timestamps, no
    //    addresses), so a 16-byte FNV-1a digest pins an entire stream —
    //    how tests/golden_trace.rs freezes the canonical G5 traces.
    let d = digest_events(events.iter());
    println!("trace digest: {:#018X} over {} events", d.hash, d.count);

    // 4. Export: the same stream as JSONL, one event per line — what
    //    `tcq --trace` and `section --trace` write for offline analysis.
    let path = std::env::temp_dir().join("trace_quickstart.jsonl");
    let file = std::fs::File::create(&path).expect("create trace file");
    let jsonl = Arc::new(JsonlSink::new(BufWriter::new(file)));
    let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(jsonl.clone()));
    db.run(&Query::partial(vec![3, 141]), Algorithm::Btc, &cfg)
        .expect("traced rerun");
    jsonl.finish().expect("flush trace file");
    println!("JSONL trace written to {}", path.display());
}
