//! Quickstart: load a graph, run full and partial transitive closure,
//! inspect the cost metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;

fn main() {
    // A random DAG in the study's parameterization: 2000 nodes, average
    // out-degree 5, generation locality 200 (the paper's G5 family).
    // Generation is deterministic (tc-det xoshiro256++): seed 7 yields
    // this exact graph on every platform — it is the workload pinned by
    // tests/golden_seed.rs.
    let graph = DagGenerator::new(2000, 5.0, 200).seed(7).generate();
    println!(
        "graph: {} nodes, {} arcs, avg out-degree {:.2}",
        graph.n(),
        graph.arc_count(),
        graph.avg_out_degree()
    );

    // Load it as a relation clustered on the source attribute (plus the
    // inverse relation, so JKB2 can run too).
    let mut db = Database::build(&graph, true).expect("load database");

    // System configuration: a 20-page buffer pool with LRU replacement.
    let cfg = SystemConfig::with_buffer(20);

    // Full transitive closure with the basic graph-based algorithm.
    let full = db
        .run(&Query::full(), Algorithm::Btc, &cfg)
        .expect("run BTC");
    println!("\n=== full closure, BTC ===\n{}", full.metrics);

    // A selective query: all successors of three source nodes.
    let query = Query::partial(vec![11, 503, 977]);
    println!("\n=== partial closure from 3 sources ===");
    for algo in [Algorithm::Btc, Algorithm::Jkb2, Algorithm::Srch] {
        let res = db.run(&query, algo, &cfg).expect("run");
        println!(
            "{:>5}: {:>7} page I/O, {:>9} tuples generated, answer {:>6} tuples",
            algo.name(),
            res.metrics.total_io(),
            res.metrics.tuples_generated,
            res.metrics.answer_tuples
        );
    }
    println!("\nThe search algorithm wins at this selectivity — the paper's §6.3 in one run.");
}
