//! The serving layer end to end: freeze a closure into an immutable
//! snapshot, play a seeded Zipf-skewed query mix against it with a
//! worker pool, publish a re-frozen snapshot mid-serve, and show the
//! deterministic track holding still while the worker count moves.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::{DagGenerator, StreamKind, UpdateStream};
use tc_study::serve::{LoopMode, MixSpec, QueryStream, ServeConfig, Service};

fn main() {
    // A small instance of the paper's G5 parameterization (seeded, so
    // this example prints the same counted numbers on every machine).
    let graph = DagGenerator::new(500, 4.0, 100).seed(7).generate();
    let cfg = SystemConfig::with_buffer(20);

    // 1. Freeze: build the closure once, then freeze it — reachability
    //    index included — into an immutable snapshot whose page images
    //    every session shares behind an Arc.
    let mut dyn_tc = DynamicClosure::build(&graph, &cfg).expect("materialize closure");
    let snapshot = dyn_tc.freeze(0).expect("freeze epoch 0");
    println!(
        "epoch 0: {} closure tuples captured on {} frozen pages",
        snapshot.closure_tuples(),
        snapshot.pages().page_count(),
    );

    // 2. Load: a seeded stream — 4 clients × 32 requests, balanced
    //    reach/ptc/path mix, Zipf-skewed sources. Pure function of its
    //    parameters; replays bit-for-bit.
    let stream = QueryStream::generate(graph.n(), 4, 32, MixSpec::MIXED, 0.8, LoopMode::Closed, 42);
    println!(
        "stream digest {:016x} ({} requests)",
        stream.digest(),
        stream.len()
    );

    // 3. Serve: workers claim whole clients from per-client queues, so
    //    everything counted — pages read, cache hits, reply digests —
    //    is a pure function of each client's request sequence. The same
    //    serve at 1 and 4 workers must agree bit-for-bit.
    let service = Service::new(Arc::new(snapshot));
    for workers in [1usize, 4] {
        let report = service
            .serve(&stream, &ServeConfig::default().workers(workers))
            .expect("serve");
        println!(
            "workers {}: digest {:016x}, {} pages read, cache {}/{} | {:>6.0} q/s (wall, non-gating)",
            workers,
            report.digest(),
            report.pages_read(),
            report.cache_hits(),
            report.cache_lookups(),
            report.qps(),
        );
    }

    // 4. Swap: apply an update batch to the live closure, freeze epoch
    //    1, publish. In-flight queries would finish on epoch 0; every
    //    new request sees epoch 1. Replies name their epoch.
    let updates = UpdateStream::generate(&graph, StreamKind::Mixed, 1, 8, 100, 7);
    let batch = &updates.batches()[0];
    dyn_tc.apply(batch).expect("apply batch");
    service.publish(dyn_tc.freeze(1).expect("freeze epoch 1"));
    let report = service
        .serve(&stream, &ServeConfig::default().workers(4))
        .expect("serve epoch 1");
    println!(
        "after publish: epoch {}, digest {:016x} ({} pages read)",
        service.snapshot().epoch(),
        report.digest(),
        report.pages_read(),
    );
}
