//! Dynamic maintenance end to end: materialize a closure, stream arc
//! insertions and deletions through it, and compare the cumulative cost
//! against recomputing from scratch after every batch.
//!
//! ```text
//! cargo run --release --example dynamic_quickstart
//! ```

use tc_study::core::prelude::*;
use tc_study::graph::{DagGenerator, StreamKind, UpdateStream};

fn main() {
    // A small instance of the paper's G5 parameterization (seeded, so
    // this example prints the same numbers on every machine).
    let graph = DagGenerator::new(500, 4.0, 100).seed(7).generate();
    let cfg = SystemConfig::with_buffer(20);

    // 1. Materialize: DynamicClosure owns the clustered base relation,
    //    its index, and a full-closure file on the simulated disk.
    let mut dyn_tc = DynamicClosure::build(&graph, &cfg).expect("materialize closure");
    println!(
        "materialized {} closure tuples on {} pages",
        dyn_tc.tuple_count(),
        dyn_tc.closure_pages(),
    );

    // 2. Stream: a seeded mixed-churn workload — inserts are sampled
    //    topological-order-windowed (never creating a cycle), deletes
    //    from the live arc set. Same generator the `updates` experiment
    //    section and `tcq update` use.
    let stream = UpdateStream::generate(&graph, StreamKind::Mixed, 4, 8, 100, 42);

    // 3. Maintain: each apply is one traced, metered run — seminaive
    //    delta propagation for the batch's inserts, DRed-style
    //    overdelete/rederive for its deletes. For comparison, recompute
    //    the closure from scratch on the mutated graph each time.
    let mut live = graph.clone();
    let (mut incr_io, mut scratch_io) = (0u64, 0u64);
    for (i, batch) in stream.batches().iter().enumerate() {
        for op in batch {
            match *op {
                tc_study::graph::UpdateOp::Insert(u, v) => live.add_arc(u, v),
                tc_study::graph::UpdateOp::Delete(u, v) => live.remove_arc(u, v),
            };
        }
        let res = dyn_tc.apply(batch).expect("apply batch");
        incr_io += res.metrics.total_io();

        let mut db = Database::build_for(&live, false, &cfg).expect("scratch load");
        let scratch = db
            .run(&Query::full(), Algorithm::Seminaive, &cfg)
            .expect("scratch recompute");
        scratch_io += scratch.metrics.total_io();

        println!(
            "batch {}: {} ops, +{} -{} tuples | incremental {} I/O vs scratch {} I/O",
            i + 1,
            batch.len(),
            res.inserted,
            res.removed,
            res.metrics.total_io(),
            scratch.metrics.total_io(),
        );
    }

    // 4. The crossover: maintenance touches only pages near the delta,
    //    recomputation pays the whole closure every time.
    println!(
        "stream done: closure now {} tuples; cumulative I/O {} incremental vs {} from scratch ({}x)",
        dyn_tc.tuple_count(),
        incr_io,
        scratch_io,
        scratch_io / incr_io.max(1),
    );
}
