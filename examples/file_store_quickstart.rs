//! The file-backed storage backend end to end: run a query on real
//! files, reopen the store to see crash recovery's view, and verify the
//! backends agree on every measured number.
//!
//! ```text
//! cargo run --release --example file_store_quickstart
//! ```

use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::storage::{Backend, FileKind, FileStore, Page, PageStore, TempDir};

fn main() {
    // A small instance of the paper's G5 parameterization (seeded, so
    // this example prints the same numbers on every machine).
    let graph = DagGenerator::new(500, 4.0, 100).seed(7).generate();
    let query = Query::partial(vec![3, 141]);

    // 1. Same run, two backends. `Backend::Sim` is the paper's counting
    //    disk; `Backend::file_temp()` puts a real segment + manifest in
    //    a fresh temp directory (removed automatically on drop). The
    //    backends are observationally identical, so every metric
    //    matches bit for bit.
    let mut io = Vec::new();
    for backend in [Backend::Sim, Backend::file_temp()] {
        let cfg = SystemConfig::with_buffer(20).backend(backend.clone());
        let mut db = Database::build_for(&graph, false, &cfg).expect("build");
        let res = db.run(&query, Algorithm::Btc, &cfg).expect("run BTC");
        println!(
            "backend {:>4}: {} page I/Os, {} tuples generated",
            backend.name(),
            res.metrics.total_io(),
            res.metrics.tuples_generated,
        );
        io.push((res.metrics.total_io(), res.metrics.tuples_generated));
    }
    assert_eq!(io[0], io[1], "backends must agree on every metric");

    // 2. Durability: write pages into an explicit directory, sync, and
    //    reopen. `sync` fsyncs the segment, then atomically rewrites the
    //    checksummed manifest, so whatever `open` finds is consistent.
    let tmp = TempDir::new("file-store-quickstart").expect("temp dir");
    {
        let mut store = FileStore::create(tmp.path()).expect("create store");
        let f = store.new_file(FileKind::Relation);
        let pid = store.alloc(f).expect("alloc");
        let mut page = Page::new();
        page.put_u32(0, 1994);
        store.write_page(pid, &page).expect("write");
        store.sync().expect("sync");
        println!(
            "wrote page {pid:?} to {} ({} page in store)",
            store.dir().display(),
            store.page_count(),
        );
    } // store dropped — only the files remain

    let mut store = FileStore::open(tmp.path()).expect("reopen store");
    println!(
        "reopened: recovery clean = {}, {} page",
        store.recovery().is_clean(),
        store.page_count(),
    );
    let pid = store.file_pages(tc_study::storage::FileId(0))[0];
    let mut page = Page::new();
    store.read_page(pid, &mut page).expect("read back");
    assert_eq!(page.get_u32(0), 1994);
    println!("page survived the reopen; checksum verified on read");
}
