//! The profiling layer end to end: capture a run through a live
//! `ProfileSink`, read phase/kind attribution and the miss taxonomy off
//! the profile, re-derive the same profile offline from exported JSONL,
//! and correlate a cheap tuple-level metric against page I/O.
//!
//! ```text
//! cargo run --release --example profile_quickstart
//! ```

use std::io::BufWriter;
use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::profile::{
    format_milli, kind_label, profile_jsonl, render, spearman_u64, ProfileSink, KIND_SLOTS,
};
use tc_study::trace::{JsonlSink, TeeSink, Tracer};

fn main() {
    // A small instance of the paper's G5 parameterization (seeded, so
    // this example prints the same numbers on every machine).
    let graph = DagGenerator::new(500, 4.0, 100).seed(7).generate();
    let mut db = Database::build(&graph, false).expect("load database");

    // 1. Live profiling: a ProfileSink is just a TraceSink, so it rides
    //    the run like any other sink — here teed with a JSONL export of
    //    the same stream for step 3.
    let prof = Arc::new(ProfileSink::new());
    let path = std::env::temp_dir().join("profile_quickstart.jsonl");
    let file = std::fs::File::create(&path).expect("create trace file");
    let jsonl = Arc::new(JsonlSink::new(BufWriter::new(file)));
    let tee = Arc::new(TeeSink::new(vec![prof.clone(), jsonl.clone()]));
    let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(tee));
    let res = db
        .run(&Query::partial(vec![3, 141]), Algorithm::Btc, &cfg)
        .expect("run BTC");
    jsonl.finish().expect("flush trace file");
    let p = prof.finish();

    // 2. Read the profile: where did the I/O go? The attribution sums
    //    are bit-identical to the engine's CostMetrics — the contract
    //    behind tests/golden_profile.rs.
    let (r, c) = (p.restructure_io(), p.compute_io());
    assert_eq!(r.total() + c.total(), res.metrics.total_io());
    println!(
        "phase I/O: restructuring {}r+{}w, computation {}r+{}w",
        r.reads, r.writes, c.reads, c.writes
    );
    for k in 0..KIND_SLOTS {
        let io = p.io_by_kind(k);
        if io.total() > 0 {
            println!(
                "  {:12} {:>6} reads {:>6} writes",
                kind_label(k),
                io.reads,
                io.writes
            );
        }
    }
    let b = p.buffer_totals();
    let m = p.miss_totals();
    println!(
        "buffer: {} requests, {} hits; misses: {} cold, {} capacity, {} self-refetch",
        b.requests, b.hits, m.cold, m.capacity, m.self_refetch
    );
    println!(
        "peak residency: {} pages (first reached at event {})",
        p.max_resident, p.max_resident_at
    );

    // 3. Offline: fold the exported JSONL back into a profile. Same
    //    fold, different source — the rendered reports must match.
    let reader = std::fs::File::open(&path).expect("open trace file");
    let offline = profile_jsonl(std::io::BufReader::new(reader)).expect("fold JSONL");
    assert_eq!(render(&p), render(&offline), "live != offline profile");
    println!("offline fold of {} matches the live sink ✓", path.display());

    // 4. Correlation: does a cheap metric predict page I/O? Spearman
    //    rank correlation (integer-only, milli-scaled) across source
    //    nodes — the machinery behind `section predictiveness`.
    let mut tuples = Vec::new();
    let mut ios = Vec::new();
    for src in [3u32, 57, 141, 260, 395] {
        let cfg = SystemConfig::with_buffer(20);
        let res = db
            .run(&Query::partial(vec![src]), Algorithm::Btc, &cfg)
            .expect("correlation run");
        tuples.push(res.metrics.tuples_generated);
        ios.push(res.metrics.total_io());
    }
    let rho = spearman_u64(&tuples, &ios).expect("non-degenerate ranks");
    println!(
        "Spearman(tuples generated, page I/O) over 5 sources: {}",
        format_milli(rho)
    );
}
