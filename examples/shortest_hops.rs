//! Path extraction from successor spanning trees (paper §6.2).
//!
//! SPN costs more page I/O than BTC — but its trees "also establish a
//! path between the two nodes", which flat successor lists cannot. This
//! example builds a [`PathIndex`] over a network-style DAG and answers
//! concrete routing questions from the on-disk trees, paying page I/O
//! per query like any other access.
//!
//! ```text
//! cargo run --release --example shortest_hops
//! ```

use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;

fn main() {
    // A G5-style workload standing in for a release pipeline / network.
    let g = DagGenerator::new(1500, 5.0, 150).seed(77).generate();
    let mut db = Database::build(&g, false).expect("load");

    let cfg = SystemConfig::with_buffer(20);
    let mut index = db
        .build_path_index(&Query::full(), &cfg)
        .expect("build SPN path index");
    println!(
        "index built: {} reachability facts, {} page I/O (SPN pays extra for structure)",
        index.build_metrics().answer_tuples,
        index.build_metrics().total_io()
    );

    // Answer a few routing queries from the stored trees.
    let pairs = [(3u32, 1490u32), (10, 777), (0, 42), (1400, 3)];
    for (from, to) in pairs {
        let before = index.total_io();
        match index.path(from, to).expect("query") {
            Some(path) => {
                let hops = path.len() - 1;
                let shown: Vec<String> = if path.len() > 8 {
                    let mut v: Vec<String> = path[..4].iter().map(u32::to_string).collect();
                    v.push("…".into());
                    v.extend(path[path.len() - 3..].iter().map(u32::to_string));
                    v
                } else {
                    path.iter().map(u32::to_string).collect()
                };
                println!(
                    "{from:>5} -> {to:<5} {hops:>3} hops via {} ({} page I/O for the lookup)",
                    shown.join(" -> "),
                    index.total_io() - before
                );
            }
            None => println!("{from:>5} -> {to:<5} unreachable"),
        }
    }

    // Hand the store back so the database can keep serving queries.
    index.into_database_store(&mut db);
    let res = db
        .run(&Query::full(), Algorithm::Btc, &cfg)
        .expect("BTC still runs");
    println!(
        "\nfor comparison, BTC's flat-list closure: {} page I/O — cheaper, but no paths",
        res.metrics.total_io()
    );
}
