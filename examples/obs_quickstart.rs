//! The wall-clock side of the observability story: span-profile a run,
//! render the phase tree, and collect serve latency histograms — all
//! strictly outside the deterministic gate (nothing printed here ever
//! feeds a digest or a golden file).
//!
//! ```text
//! cargo run --release --example obs_quickstart
//! ```

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::obs::SpanRecorder;
use tc_study::serve::{
    LoopMode, MixSpec, QueryStream, ServeConfig, ServeObs, Service, CANONICAL_SERVE_SEED,
};

fn main() {
    // A small instance of the paper's G5 parameterization. The *work*
    // is seeded and bit-deterministic; the *times* below are whatever
    // this machine does today — that split is the whole design.
    let graph = DagGenerator::new(500, 4.0, 100).seed(7).generate();
    let mut db = Database::build(&graph, false).expect("load database");

    // 1. Span-profile a run: arm a collector through SystemConfig,
    //    exactly like attaching a Tracer. Disabled recorders (the
    //    default) are a single branch and never allocate, so the
    //    engines carry the instrumentation unconditionally.
    let (recorder, collector) = SpanRecorder::collecting();
    let cfg = SystemConfig::with_buffer(20).observed(recorder);
    let res = db
        .run(&Query::partial(vec![3, 141]), Algorithm::Btc, &cfg)
        .expect("run BTC");
    let tree = collector.tree();
    println!(
        "BTC on G(500, 4, 100): {} page I/Os",
        res.metrics.total_io()
    );
    println!("\n{}", tree.render());

    // The tree is data, not just a rendering: walk it for phase shares.
    if let (Some(run), Some(compute)) = (tree.find(&["run"]), tree.find(&["run", "compute"])) {
        println!(
            "compute is {:.1}% of the run's wall time",
            compute.total_ns as f64 / run.total_ns.max(1) as f64 * 100.0
        );
    }

    // 2. Serve latency: freeze the closure, replay a seeded query mix,
    //    and read per-reply service/queue-wait histograms. The reply
    //    digest is bit-deterministic at any worker count; the latency
    //    figures ride beside it and never gate anything.
    let snap = ClosedSnapshot::build(&graph, &SystemConfig::with_buffer(32)).expect("freeze");
    let service = Service::new(Arc::new(snap));
    let stream = QueryStream::generate(
        graph.n(),
        2,
        32,
        MixSpec::MIXED,
        0.8,
        LoopMode::Closed,
        CANONICAL_SERVE_SEED,
    );
    let obs = ServeObs::enabled();
    let report = service
        .serve(
            &stream,
            &ServeConfig::default().workers(2).observed(obs.clone()),
        )
        .expect("serve");
    let service_hist = obs.service_histogram().expect("obs is enabled");
    println!(
        "\nserved {} replies (digest {:016x}, deterministic): \
         service p50 {} ns, p95 {} ns, p99 {} ns (wall-clock, non-gating)",
        report.replies(),
        report.digest(),
        service_hist.percentile(50.0),
        service_hist.percentile(95.0),
        service_hist.percentile(99.0),
    );

    // 3. The same numbers in exposition formats: `tcq serve --metrics
    //    PATH` writes these files periodically during a serve.
    if let Some(prom) = obs.render_prometheus() {
        let head: Vec<&str> = prom.lines().take(6).collect();
        println!("\nPrometheus text (first lines):\n{}", head.join("\n"));
    }
}
