//! Curriculum planning over a prerequisite DAG.
//!
//! A registrar's query: given a set of entry courses a transfer student
//! has credit for, which advanced courses are (transitively) unlocked?
//! Prerequisite chains are long and mostly linear — exactly the shape
//! where Jiang's single-parent optimization (the `BJ` algorithm) and the
//! rectangle model's "height" dimension earn their keep.
//!
//! ```text
//! cargo run --release --example course_prereqs
//! ```

use tc_study::core::prelude::*;
use tc_study::graph::{Graph, NodeId, RectangleModel};

/// Builds a synthetic curriculum: `tracks` parallel specializations of
/// `depth` courses each, hanging off a few shared intro courses, with
/// occasional cross-track electives.
fn curriculum(tracks: usize, depth: usize) -> Graph {
    let intro = 4usize;
    let n = intro + tracks * depth;
    let mut arcs: Vec<(NodeId, NodeId)> = Vec::new();
    for t in 0..tracks {
        let base = intro + t * depth;
        // The track's first course requires an intro course.
        arcs.push(((t % intro) as NodeId, base as NodeId));
        // A linear chain of prerequisites.
        for d in 1..depth {
            arcs.push(((base + d - 1) as NodeId, (base + d) as NodeId));
        }
        // A cross-track elective every few levels.
        if t > 0 {
            for d in (3..depth).step_by(5) {
                arcs.push(((base - depth + d - 1) as NodeId, (base + d) as NodeId));
            }
        }
    }
    Graph::from_arcs(n, arcs)
}

fn main() {
    let g = curriculum(40, 24);
    println!(
        "curriculum: {} courses, {} prerequisite edges",
        g.n(),
        g.arc_count()
    );
    let model = RectangleModel::of(&g);
    println!(
        "rectangle model: height {:.1} (long chains), width {:.1} (little redundancy)",
        model.height, model.width
    );

    let mut db = Database::build(&g, true).expect("load");
    let cfg = SystemConfig::with_buffer(10);

    // The student enters with credit for intro courses 0 and 2.
    let query = Query::partial(vec![0, 2]);
    println!("\nunlocked-courses query from 2 entry courses:");
    for algo in [
        Algorithm::Btc,
        Algorithm::Bj,
        Algorithm::Jkb2,
        Algorithm::Srch,
    ] {
        let res = db.run(&query, algo, &cfg).expect("run");
        println!(
            "  {:>5}: {:>5} page I/O, {:>6} unions, marking {:>5.1}%, answer {} courses",
            algo.name(),
            res.metrics.total_io(),
            res.metrics.unions,
            res.metrics.marking_pct() * 100.0,
            res.metrics.answer_tuples
        );
    }

    // The single-parent optimization's effect is visible in how much of
    // the chain structure BJ never expands.
    let mut c = cfg.clone();
    c.collect_answer = true;
    let btc = db.run(&query, Algorithm::Btc, &c).expect("btc");
    let bj = db.run(&query, Algorithm::Bj, &c).expect("bj");
    assert_eq!(btc.answer, bj.answer, "same answer either way");
    println!(
        "\nBJ generated {} tuples vs BTC's {} — the single-parent chains were\n\
         adopted upward instead of being expanded node by node (paper §3.3).",
        bj.metrics.tuples_generated, btc.metrics.tuples_generated
    );
}
