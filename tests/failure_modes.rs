//! Edge cases and failure injection across the stack.

use tc_study::buffer::{BufferPool, PagePolicy};
use tc_study::core::prelude::*;
use tc_study::graph::{DagGenerator, Graph};
use tc_study::storage::{DiskSim, FaultConfig, FileKind, Page, PageId, Pager, StorageError};

#[test]
fn empty_graph_runs_everywhere() {
    let g = Graph::empty(16);
    let mut db = Database::build(&g, true).unwrap();
    let cfg = SystemConfig::default().collecting();
    for algo in Algorithm::ALL {
        let res = db.run(&Query::full(), algo, &cfg).unwrap();
        assert_eq!(res.metrics.answer_tuples, 0, "{algo}");
        assert!(res.answer.unwrap().is_empty());
    }
}

#[test]
fn single_node_graph() {
    let g = Graph::empty(1);
    let mut db = Database::build(&g, true).unwrap();
    for algo in Algorithm::ALL {
        let res = db
            .run(&Query::partial(vec![0]), algo, &SystemConfig::default())
            .unwrap();
        assert_eq!(res.metrics.answer_tuples, 0, "{algo}");
    }
}

#[test]
fn empty_source_set_is_a_noop() {
    let g = DagGenerator::new(100, 3.0, 20).seed(1).generate();
    let mut db = Database::build(&g, true).unwrap();
    for algo in Algorithm::ALL {
        let res = db
            .run(&Query::partial(vec![]), algo, &SystemConfig::default())
            .unwrap();
        assert_eq!(res.metrics.answer_tuples, 0, "{algo}");
    }
}

#[test]
fn all_sources_ptc_equals_full_closure() {
    let g = DagGenerator::new(200, 3.0, 50).seed(2).generate();
    let mut db = Database::build(&g, true).unwrap();
    let cfg = SystemConfig::default().collecting();
    let all: Vec<u32> = (0..200).collect();
    for algo in [Algorithm::Btc, Algorithm::Spn, Algorithm::Jkb2] {
        let full = db.run(&Query::full(), algo, &cfg).unwrap();
        let ptc = db.run(&Query::partial(all.clone()), algo, &cfg).unwrap();
        assert_eq!(full.answer, ptc.answer, "{algo}");
    }
}

#[test]
fn minimum_buffer_pool_still_completes() {
    // Four frames is the practical floor (split + scan + tail + victim).
    let g = DagGenerator::new(300, 4.0, 60).seed(3).generate();
    let mut db = Database::build(&g, false).unwrap();
    let cfg = SystemConfig::with_buffer(4).validated();
    db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
}

#[test]
fn cyclic_input_is_rejected_by_the_engine_and_handled_by_condensation() {
    let g = tc_study::graph::gen::cyclic(120, 3.0, 30, 12, 7);
    assert!(!g.is_acyclic());
    // The engine's restructuring phase requires a DAG (documented).
    let mut db = Database::build(&g, false).unwrap();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = db.run(&Query::full(), Algorithm::Btc, &SystemConfig::default());
    }));
    assert!(attempt.is_err(), "cyclic input must be refused");

    // The paper's prescription: condense first.
    let cond = tc_study::graph::condensation(&g);
    let mut db = Database::build(&cond.graph, false).unwrap();
    let res = db
        .run(
            &Query::full(),
            Algorithm::Btc,
            &SystemConfig::default().validated(),
        )
        .unwrap();
    assert!(res.metrics.answer_tuples > 0);
}

#[test]
fn jkb2_without_dual_representation_is_an_error() {
    let g = DagGenerator::new(50, 2.0, 10).seed(4).generate();
    let mut db = Database::build(&g, false).unwrap();
    let err = db
        .run(
            &Query::partial(vec![0]),
            Algorithm::Jkb2,
            &SystemConfig::default(),
        )
        .unwrap_err();
    assert!(matches!(err, StorageError::WrongFileKind { .. }));
    // The database is still usable afterwards (disk restored).
    db.run(
        &Query::partial(vec![0]),
        Algorithm::Btc,
        &SystemConfig::default(),
    )
    .unwrap();
}

#[test]
fn out_of_range_source_panics_cleanly() {
    let g = DagGenerator::new(50, 2.0, 10).seed(5).generate();
    let mut db = Database::build(&g, false).unwrap();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = db.run(
            &Query::partial(vec![999]),
            Algorithm::Btc,
            &SystemConfig::default(),
        );
    }));
    assert!(attempt.is_err());
}

#[test]
fn pool_exhaustion_is_reported_not_corrupted() {
    let mut disk = DiskSim::new();
    let file = disk.create_file(FileKind::Temp);
    let mut pids = Vec::new();
    for _ in 0..4 {
        pids.push(disk.alloc(file).unwrap());
    }
    let mut pool = BufferPool::new(disk, 3, PagePolicy::Lru);
    for &p in &pids[..3] {
        pool.pin(p).unwrap();
    }
    let err = pool.with_page(pids[3], &mut |_p: &Page| ()).unwrap_err();
    assert_eq!(err, StorageError::AllFramesPinned);
    // Unpinning recovers the pool.
    pool.unpin(pids[0]);
    pool.with_page(pids[3], &mut |_p: &Page| ()).unwrap();
}

#[test]
fn freed_files_recycle_pages_without_aliasing() {
    let mut disk = DiskSim::new();
    let keep = disk.create_file(FileKind::Relation);
    let scratch = disk.create_file(FileKind::Temp);
    let kp = disk.alloc(keep).unwrap();
    let mut page = Page::new();
    page.put_u32(0, 42);
    disk.write_page(kp, &page).unwrap();
    let sp = disk.alloc(scratch).unwrap();
    page.put_u32(0, 99);
    disk.write_page(sp, &page).unwrap();

    let mut pool = BufferPool::new(disk, 4, PagePolicy::Lru);
    pool.with_page(sp, &mut |_p: &Page| ()).unwrap();
    pool.free_file(scratch).unwrap();
    assert!(!pool.is_resident(sp), "freed pages leave the pool");

    // Reallocation reuses the freed page id with zeroed contents.
    let other = pool.create_file(FileKind::Temp);
    let reused = pool.alloc_page(other).unwrap();
    assert_eq!(reused, sp, "page id recycled");
    let v = pool
        .with_page(reused, &mut |p: &Page| p.get_u32(0))
        .unwrap();
    assert_eq!(v, 0, "recycled page is zeroed");
    // And the kept file is untouched.
    let v = pool.with_page(kp, &mut |p: &Page| p.get_u32(0)).unwrap();
    assert_eq!(v, 42);
}

#[test]
fn duplicate_and_unsorted_sources_are_normalized() {
    let g = DagGenerator::new(100, 3.0, 25).seed(6).generate();
    let mut db = Database::build(&g, true).unwrap();
    let cfg = SystemConfig::default().collecting();
    let a = db
        .run(&Query::partial(vec![9, 3, 9, 3]), Algorithm::Btc, &cfg)
        .unwrap();
    let b = db
        .run(&Query::partial(vec![3, 9]), Algorithm::Btc, &cfg)
        .unwrap();
    assert_eq!(a.answer, b.answer);
}

#[test]
fn every_storage_error_variant_constructs_and_displays() {
    // One instance of each variant: constructible from outside the
    // crate, matchable, Display non-empty, and the transient/permanent
    // split is what the retry loop relies on.
    let variants: Vec<(StorageError, bool)> = vec![
        (StorageError::PageOutOfBounds(PageId(3)), false),
        (StorageError::UnknownFile(9), false),
        (
            StorageError::SlotOutOfBounds {
                slot: 300,
                capacity: 256,
            },
            false,
        ),
        (StorageError::PageFull(PageId(1)), false),
        (StorageError::AllFramesPinned, false),
        (
            StorageError::WrongFileKind {
                expected: "relation",
                actual: "temp",
            },
            false,
        ),
        (StorageError::UnsortedInput, false),
        (
            StorageError::InsufficientSortMemory { got: 2, need: 3 },
            false,
        ),
        (
            StorageError::TransientIo {
                pid: PageId(4),
                write: true,
            },
            true,
        ),
        (StorageError::PermanentFault(PageId(5)), false),
        (
            StorageError::ChecksumMismatch {
                pid: PageId(6),
                stored: 0xAB,
                computed: 0xCD,
            },
            false,
        ),
        (
            StorageError::RetriesExhausted {
                pid: PageId(7),
                attempts: 4,
            },
            false,
        ),
        (StorageError::DiskDetached, false),
        (StorageError::Internal("invariant"), false),
    ];
    for (err, transient) in &variants {
        assert_eq!(err.is_transient(), *transient, "{err:?}");
        assert!(!format!("{err}").is_empty());
        assert_eq!(err.clone(), *err);
    }
    // No two distinct variants compare equal (guards accidental merges).
    for (i, (a, _)) in variants.iter().enumerate() {
        for (b, _) in variants.iter().skip(i + 1) {
            assert_ne!(a, b);
        }
    }
}

#[test]
fn unretryable_fault_mid_run_errors_without_poisoning_the_database() {
    let g = DagGenerator::new(300, 4.0, 60).seed(8).generate();
    let mut db = Database::build(&g, true).unwrap();

    // Page 0 is the first relation page, read by every restructuring
    // scan; killing it permanently must fail the run with the typed
    // error, never a panic.
    let cfg = SystemConfig::default().faulted(
        FaultConfig::new(1).on_page(PageId(0), tc_study::storage::FaultKind::PermanentRead),
    );
    let err = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap_err();
    assert!(
        matches!(err, StorageError::PermanentFault(_)),
        "expected the injected permanent fault, got {err:?}"
    );

    // The database must be fully usable afterwards: the fault plan was
    // disarmed and the disk handed back, so a clean run validates.
    let res = db
        .run(
            &Query::full(),
            Algorithm::Btc,
            &SystemConfig::default().validated(),
        )
        .unwrap();
    assert!(res.metrics.answer_tuples > 0);
}

#[test]
fn torn_writes_are_detected_not_absorbed() {
    let g = DagGenerator::new(300, 4.0, 60).seed(9).generate();
    let mut db = Database::build(&g, true).unwrap();

    // Every write is torn; with a 4-frame pool the corrupted pages are
    // re-read during the run and checksum verification must catch them.
    let mut cfg = SystemConfig::with_buffer(4).faulted(FaultConfig::new(2).corrupt_writes(1.0));
    cfg.retry = tc_study::storage::RetryPolicy::default();
    let err = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap_err();
    assert!(
        matches!(err, StorageError::ChecksumMismatch { .. }),
        "expected a checksum detection, got {err:?}"
    );

    // Still not poisoned: the next fault-free run repairs nothing silently
    // (the base relation was bulk-loaded before the plan was armed) and
    // completes with a validated answer.
    let res = db
        .run(
            &Query::full(),
            Algorithm::Btc,
            &SystemConfig::default().validated(),
        )
        .unwrap();
    assert!(res.metrics.answer_tuples > 0);
}

#[test]
fn retries_exhausted_surfaces_when_transients_outlast_the_budget() {
    let g = DagGenerator::new(300, 4.0, 60).seed(10).generate();
    let mut db = Database::build(&g, true).unwrap();
    // A streak cap above the attempt budget makes a p=1.0 transient plan
    // unclearable: the retry loop must give up with the typed error.
    let cfg = SystemConfig::default().faulted(
        FaultConfig::new(3)
            .transient_reads(1.0)
            .max_transient_streak(100),
    );
    let err = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap_err();
    assert!(
        matches!(err, StorageError::RetriesExhausted { attempts: 4, .. }),
        "expected retry exhaustion at the default budget, got {err:?}"
    );
    // And again: the database survives.
    db.run(&Query::full(), Algorithm::Btc, &SystemConfig::default())
        .unwrap();
}

#[test]
fn source_with_no_successors() {
    // A sink node as the only source: empty answer, no I/O explosion.
    let g = Graph::from_arcs(5, [(0, 4), (1, 4), (2, 4)]);
    let mut db = Database::build(&g, true).unwrap();
    for algo in Algorithm::ALL {
        let res = db
            .run(&Query::partial(vec![4]), algo, &SystemConfig::default())
            .unwrap();
        assert_eq!(res.metrics.answer_tuples, 0, "{algo}");
        assert!(
            res.metrics.total_io() < 50,
            "{algo}: {}",
            res.metrics.total_io()
        );
    }
}
