//! Property test: incremental maintenance ≡ from-scratch recompute on
//! random graphs × random update streams.
//!
//! For `tc-det`-generated small DAGs and raw op lists (applied one op
//! per batch, so the shrinker minimizes to the shortest failing update
//! prefix), across every page-replacement policy and with optional
//! transient-fault plans, the maintained closure must equal the
//! in-memory oracle after every apply, every apply's metrics must
//! satisfy `metrics ≡ replay(trace)`, and the final state must match a
//! from-scratch rebuild read back through the disk. Replay a failure
//! with the printed `TC_DET_SEED=...`.

use std::sync::Arc;
use tc_study::buffer::PagePolicy;
use tc_study::core::prelude::*;
use tc_study::det::check::{self, Checker};
use tc_study::det::{require, require_eq, Rng};
use tc_study::graph::{closure, Graph, NodeId, UpdateOp};
use tc_study::trace::{replay, Tracer, VecSink};

/// Raw generated input: node count plus unconstrained base-arc pairs,
/// raw update triples `(is_insert, a, b)`, a policy index, and an
/// optional fault seed. Kept raw so shrinking can drop ops directly.
type RawCase = (
    (usize, Vec<(u32, u32)>),
    Vec<(bool, u32, u32)>,
    usize,
    Option<u64>,
);

/// Orients pairs ascending (self-loops dropped), so the base graph and
/// every generated insert stay acyclic by construction.
fn orient(a: u32, b: u32) -> Option<(u32, u32)> {
    use std::cmp::Ordering::*;
    match a.cmp(&b) {
        Less => Some((a, b)),
        Greater => Some((b, a)),
        Equal => None,
    }
}

fn dag_of(&(n, ref pairs): &(usize, Vec<(u32, u32)>)) -> Graph {
    Graph::from_arcs(n, pairs.iter().filter_map(|&(a, b)| orient(a, b)))
}

/// Maps a raw triple to an op: both kinds oriented ascending, so
/// inserts can never close a cycle and deletes hit oriented arcs.
fn op_of(n: usize, &(ins, a, b): &(bool, u32, u32)) -> Option<UpdateOp> {
    let (a, b) = orient(a % n as u32, b % n as u32)?;
    Some(if ins {
        UpdateOp::Insert(a, b)
    } else {
        UpdateOp::Delete(a, b)
    })
}

fn generate(rng: &mut Rng) -> RawCase {
    let n = rng.random_range(2..24usize);
    let pairs = check::vec_of(rng, 0..60, |r| {
        (r.random_range(0..n as u32), r.random_range(0..n as u32))
    });
    let ops = check::vec_of(rng, 1..16, |r| {
        (
            r.random_bool(0.5),
            r.random_range(0..n as u32),
            r.random_range(0..n as u32),
        )
    });
    let policy = rng.random_range(0..PagePolicy::ALL.len());
    let fault = rng
        .random_range(0..3u32)
        .eq(&0)
        .then(|| rng.random_range(0..1_000_000));
    ((n, pairs), ops, policy, fault)
}

fn shrink(case: &RawCase) -> Vec<RawCase> {
    let ((n, pairs), ops, policy, fault) = case;
    let mut out: Vec<RawCase> = check::shrink_vec(ops)
        .into_iter()
        .map(|o| ((*n, pairs.clone()), o, *policy, *fault))
        .collect();
    out.extend(
        check::shrink_vec(pairs)
            .into_iter()
            .map(|p| ((*n, p), ops.clone(), *policy, *fault)),
    );
    if fault.is_some() {
        out.push(((*n, pairs.clone()), ops.clone(), *policy, None));
    }
    out
}

fn oracle(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let all: Vec<NodeId> = (0..g.n() as NodeId).collect();
    closure::ptc_answer(g, &all)
}

#[test]
fn incremental_matches_scratch_on_random_streams() {
    Checker::new("dynamic_incremental_eq_scratch")
        .cases(24)
        .run(generate, shrink, |case| {
            let (raw, raw_ops, policy, fault) = case;
            let g = dag_of(raw);
            let sink = Arc::new(VecSink::unbounded());
            let mut cfg = SystemConfig::with_buffer(6).traced(Tracer::new(sink.clone()));
            cfg.page_policy = PagePolicy::ALL[*policy];
            if let Some(seed) = fault {
                cfg.fault = Some(
                    FaultConfig::new(*seed)
                        .transient_reads(0.05)
                        .transient_writes(0.05),
                );
            }
            let mut dyn_tc = match DynamicClosure::build(&g, &cfg) {
                Ok(d) => d,
                // A fault plan can exhaust the retry budget during the
                // initial materialization; nothing to check then.
                Err(_) => return Ok(()),
            };
            let mut live = g.clone();
            let mut seen = 0usize;
            for raw_op in raw_ops {
                let Some(op) = op_of(live.n(), raw_op) else {
                    continue;
                };
                match op {
                    UpdateOp::Insert(u, v) => live.add_arc(u, v),
                    UpdateOp::Delete(u, v) => live.remove_arc(u, v),
                };
                // One op per batch: a failing case shrinks to the
                // shortest failing update prefix.
                let Ok(res) = dyn_tc.apply(&[op]) else {
                    // An erroring apply leaves the instance untrusted
                    // (like a crash); the case ends here.
                    return Ok(());
                };
                require_eq!(sink.dropped(), 0, "VecSink dropped events");
                let events = sink.events();
                let replayed = match replay(events[seen..].iter().cloned()) {
                    Ok(r) => r,
                    Err(e) => return Err(format!("replay failed after {op:?}: {e:?}")),
                };
                seen = events.len();
                let expected = res.metrics.to_replayed();
                require!(
                    replayed == expected,
                    "replay(trace) != metrics after {:?}; field diff:\n{}",
                    op,
                    expected.diff(&replayed).join("\n")
                );
                let tuples = match dyn_tc.tuples() {
                    Ok(t) => t,
                    Err(_) => return Ok(()), // fault during the readback scan
                };
                require!(
                    tuples == oracle(&live),
                    "maintained closure diverged from the oracle after {:?}",
                    op
                );
            }
            // Final state also matches a from-scratch rebuild through
            // the disk roundtrip (fault-free config for the rebuild).
            let scratch_cfg = SystemConfig::with_buffer(6);
            let mut scratch = DynamicClosure::build(&live, &scratch_cfg)
                .map_err(|e| format!("scratch build failed: {e}"))?;
            let (a, b) = (dyn_tc.tuples(), scratch.tuples());
            if let (Ok(a), Ok(b)) = (a, b) {
                require_eq!(a, b, "incremental != from-scratch rebuild at stream end");
            }
            Ok(())
        });
}
