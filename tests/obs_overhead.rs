//! Zero-cost-when-disabled guard for the wall-clock span layer.
//!
//! Companion to `trace_overhead.rs` (the event tracer's guard): a
//! disabled [`SpanRecorder`]'s `enter` is a single `None` branch — no
//! clock read, no allocation — and arming a collector must not perturb
//! a single deterministic metric: the canonical G5 BTC run stays at its
//! golden 17624 page transfers with spans recorded or not. Together
//! these are the obs crate's half of the repo-wide contract that
//! timing never flows into (or changes) any gated number.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::obs::SpanRecorder;

/// Counts allocations per thread (thread-local, so the harness running
/// other tests concurrently in this binary cannot perturb the count).
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY-FREE: pure delegation to `System` plus a Cell bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

const GOLDEN_TOTAL_IO: u64 = 17624;

#[test]
fn disabled_recorder_enter_does_not_allocate() {
    let rec = SpanRecorder::disabled();
    assert!(!rec.is_enabled());
    // Nested guards too: the whole RAII path (enter + drop) must stay
    // allocation-free when disabled, since it sits inside per-page and
    // per-iteration engine loops.
    let before = allocs_on_this_thread();
    for _ in 0..10_000u64 {
        let _run = rec.enter("run");
        let _phase = rec.enter("compute");
        let _op = rec.enter("union");
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "a disabled SpanRecorder::enter allocated — the no-op path must be free"
    );
}

#[test]
fn golden_g5_metrics_are_identical_with_and_without_spans() {
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();

    // Unobserved run: the golden number must hold with span recording
    // compiled in but disabled (the production default).
    let mut db = Database::build(&g, true).unwrap();
    let plain = db
        .run(
            &Query::full(),
            Algorithm::Btc,
            &SystemConfig::with_buffer(20),
        )
        .unwrap();
    assert_eq!(
        plain.metrics.total_io(),
        GOLDEN_TOTAL_IO,
        "spans-disabled G5 BTC page I/O moved off the golden value"
    );

    // Observed run: every deterministic metric field identical, while
    // the collector demonstrably recorded the phase spans.
    let mut db = Database::build(&g, true).unwrap();
    let (rec, collector) = SpanRecorder::collecting();
    let cfg = SystemConfig::with_buffer(20).observed(rec);
    let observed = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
    let tree = collector.tree();
    assert!(
        tree.find(&["run", "compute"]).is_some_and(|n| n.count > 0),
        "collector saw no compute span:\n{}",
        tree.render()
    );
    assert_eq!(observed.metrics.total_io(), GOLDEN_TOTAL_IO);
    assert_eq!(
        observed.metrics.to_replayed(),
        plain.metrics.to_replayed(),
        "recording spans changed the measured metrics"
    );
}
