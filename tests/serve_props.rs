//! Property test: the serving layer's deterministic track is invariant
//! under worker count.
//!
//! For `tc-det`-generated random DAGs × seeded query streams × every
//! page-replacement policy × optional transient-fault plans, a serve
//! at 1 worker and a serve at a random 2–8 workers must produce the
//! same per-reply digest sequence, the same aggregate reply digest,
//! the same physical page reads, and the same cache counters — and the
//! `ptc` replies must match the in-memory closure oracle. Transient
//! faults are exercised because the retry path must clear them without
//! leaking a retry into any counted number (the streak cap is below
//! the default retry budget, so serves never error). Replay a failure
//! with the printed `TC_DET_SEED=...`.

use std::sync::Arc;
use tc_study::buffer::PagePolicy;
use tc_study::core::prelude::*;
use tc_study::det::check::{self, Checker};
use tc_study::det::{require_eq, Rng};
use tc_study::graph::{closure, Graph};
use tc_study::serve::{
    LoopMode, MixSpec, QueryStream, Reply, Request, ServeConfig, ServeReport, Service,
    SessionConfig,
};

/// Raw generated input: `(n, base arc pairs)`, `(clients, per_client,
/// stream seed, mix index)`, the challenger worker count, a policy
/// index, and an optional fault seed.
type RawCase = (
    (usize, Vec<(u32, u32)>),
    (usize, usize, u64, usize),
    usize,
    usize,
    Option<u64>,
);

const MIXES: [MixSpec; 3] = [MixSpec::MIXED, MixSpec::REACH_HEAVY, MixSpec::PTC_HEAVY];

fn orient(a: u32, b: u32) -> Option<(u32, u32)> {
    use std::cmp::Ordering::*;
    match a.cmp(&b) {
        Less => Some((a, b)),
        Greater => Some((b, a)),
        Equal => None,
    }
}

fn dag_of(&(n, ref pairs): &(usize, Vec<(u32, u32)>)) -> Graph {
    Graph::from_arcs(n, pairs.iter().filter_map(|&(a, b)| orient(a, b)))
}

fn generate(rng: &mut Rng) -> RawCase {
    let n = rng.random_range(2..40usize);
    let pairs = check::vec_of(rng, 0..80, |r| {
        (r.random_range(0..n as u32), r.random_range(0..n as u32))
    });
    let stream = (
        rng.random_range(1..5usize),
        rng.random_range(1..24usize),
        rng.random_range(0..1_000_000u64),
        rng.random_range(0..MIXES.len()),
    );
    let workers = rng.random_range(2..9usize);
    let policy = rng.random_range(0..PagePolicy::ALL.len());
    let fault = rng
        .random_range(0..3u32)
        .eq(&0)
        .then(|| rng.random_range(0..1_000_000));
    ((n, pairs), stream, workers, policy, fault)
}

fn shrink(case: &RawCase) -> Vec<RawCase> {
    let ((n, pairs), stream, workers, policy, fault) = case;
    let mut out: Vec<RawCase> = check::shrink_vec(pairs)
        .into_iter()
        .map(|p| ((*n, p), *stream, *workers, *policy, *fault))
        .collect();
    let (clients, per_client, seed, mix) = *stream;
    if per_client > 1 {
        out.push((
            (*n, pairs.clone()),
            (clients, per_client / 2, seed, mix),
            *workers,
            *policy,
            *fault,
        ));
    }
    if clients > 1 {
        out.push((
            (*n, pairs.clone()),
            (clients / 2, per_client, seed, mix),
            *workers,
            *policy,
            *fault,
        ));
    }
    if fault.is_some() {
        out.push(((*n, pairs.clone()), *stream, *workers, *policy, None));
    }
    out
}

/// Everything on the deterministic track, extracted for comparison.
fn track(report: &ServeReport) -> (Vec<(usize, usize, u64, u64)>, u64, u64, u64, u64) {
    let per_reply = report
        .clients
        .iter()
        .flat_map(|c| {
            c.records
                .iter()
                .map(|r| (r.client, r.seq, r.epoch, r.digest))
        })
        .collect();
    (
        per_reply,
        report.digest(),
        report.pages_read(),
        report.cache_hits(),
        report.cache_lookups(),
    )
}

#[test]
fn deterministic_track_is_invariant_under_worker_count() {
    Checker::new("serve_worker_invariance")
        .cases(32)
        .run(generate, shrink, |case| {
            let (raw, &(clients, per_client, seed, mix), &workers, &policy, fault) =
                (&case.0, &case.1, &case.2, &case.3, &case.4);
            let g = dag_of(raw);
            let snap = match ClosedSnapshot::build(&g, &SystemConfig::with_buffer(8)) {
                Ok(s) => Arc::new(s),
                Err(e) => return Err(format!("freeze failed: {e}")),
            };
            let stream = QueryStream::generate(
                g.n(),
                clients,
                per_client,
                MIXES[mix],
                0.8,
                LoopMode::Closed,
                seed,
            );
            let mut session = SessionConfig::default()
                .buffer_pages(4)
                .page_policy(PagePolicy::ALL[policy])
                .cache_sources(2);
            if let Some(seed) = fault {
                // Transient-only: always clears within the retry
                // budget, never reaches a counted number.
                session = session.faulted(FaultConfig::new(*seed).transient_reads(0.05));
            }
            let service = Service::new(Arc::clone(&snap));

            let serve = |workers: usize, collect: bool| {
                service.serve(
                    &stream,
                    &ServeConfig::default()
                        .workers(workers)
                        .session(session.clone())
                        .collect_replies(collect),
                )
            };
            let base = match serve(1, true) {
                Ok(r) => r,
                Err(e) => return Err(format!("serve at 1 worker failed: {e}")),
            };
            let wide = match serve(workers, false) {
                Ok(r) => r,
                Err(e) => return Err(format!("serve at {workers} workers failed: {e}")),
            };
            require_eq!(
                track(&base),
                track(&wide),
                "deterministic track diverged between 1 and {} workers",
                workers
            );
            require_eq!(base.replies(), stream.len(), "dropped replies");

            // The collected replies must be the oracle's answers.
            for (c, client) in base.clients.iter().enumerate() {
                for record in &client.records {
                    let req = stream.client(c)[record.seq];
                    let reply = record.reply.as_ref();
                    match (req, reply) {
                        (Request::Ptc { u }, Some(Reply::Ptc(row))) => {
                            require_eq!(
                                row,
                                &closure::successors_of(&g, u),
                                "ptc({}) diverged from the oracle",
                                u
                            );
                        }
                        (Request::Reach { u, v }, Some(Reply::Reach(b))) => {
                            let expect = closure::successors_of(&g, u).binary_search(&v).is_ok();
                            require_eq!(*b, expect, "reach({},{}) wrong", u, v);
                        }
                        (Request::Path { u, v }, Some(Reply::Path(hops))) => {
                            let expect = closure::successors_of(&g, u).binary_search(&v).is_ok();
                            require_eq!(hops.is_some(), expect, "path({},{}) wrong", u, v);
                        }
                        (req, reply) => {
                            return Err(format!("shape mismatch: {req:?} vs {reply:?}"))
                        }
                    }
                }
            }
            Ok(())
        });
}
