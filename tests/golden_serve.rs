//! Golden serving digests: end-to-end pin of the query-service
//! pipeline on the canonical G5 mix.
//!
//! `golden_seed.rs` pins the workload generator and `golden_report.rs`
//! the experiment renderer; this test pins the serving layer — the
//! canonical `QueryStream` (any drift in the Zipf sampler, the mix
//! draw order, or `cell_seed` shows up here first), the frozen
//! snapshot's shape, and the full deterministic track of a canonical
//! serve: aggregate reply digest, physical pages read, hot-source
//! cache counters. The same serve is then repeated at 4 workers and
//! must reproduce every pinned number bit-for-bit — the serving
//! layer's core contract (jobs/worker invariance), enforced here and
//! by CI's `bench_serve --workers 1` vs `--workers 4` byte-diff.
//!
//! If an intentional change lands, regenerate the constants below (the
//! failure message prints the new values) and note the break in
//! CHANGES.md: previously recorded serving numbers become
//! incomparable.

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::serve::{QueryStream, ServeConfig, ServeReport, Service};

/// Canonical stream: 4 clients × 64 requests, balanced mix, theta 0.8,
/// closed loop, the canonical seed.
const GOLDEN_STREAM_DIGEST: u64 = 0xFD93_D1E5_E56C_F60C;
/// The canonical G5 snapshot's materialized closure size.
const GOLDEN_CLOSURE_TUPLES: u64 = 1_482_903;
/// Pages captured into the frozen snapshot (relation + index + closure
/// + reachability-index files).
const GOLDEN_SNAPSHOT_PAGES: usize = 8_615;
/// Aggregate served-reply digest of the canonical serve.
const GOLDEN_REPLY_DIGEST: u64 = 0xA5C3_446C_233D_2C9E;
/// Physical pages read across all four sessions.
const GOLDEN_PAGES_READ: u64 = 4_311;
/// Hot-source cache hits / probes across all four sessions.
const GOLDEN_CACHE: (u64, u64) = (1, 180);

fn canonical_serve(workers: usize) -> ServeReport {
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();
    let snap = ClosedSnapshot::build(&g, &SystemConfig::with_buffer(20)).expect("freeze G5");
    assert_eq!(
        snap.closure_tuples(),
        GOLDEN_CLOSURE_TUPLES as usize,
        "closure drifted"
    );
    assert_eq!(
        snap.pages().page_count(),
        GOLDEN_SNAPSHOT_PAGES,
        "snapshot shape drifted"
    );
    let service = Service::new(Arc::new(snap));
    service
        .serve(
            &QueryStream::canonical_g5(),
            &ServeConfig::default().workers(workers),
        )
        .expect("canonical serve")
}

#[test]
fn canonical_stream_matches_golden_digest() {
    let stream = QueryStream::canonical_g5();
    assert_eq!(stream.clients(), 4);
    assert_eq!(stream.len(), 256);
    assert_eq!(
        stream.digest(),
        GOLDEN_STREAM_DIGEST,
        "canonical QueryStream drifted: digest now {:#018x}",
        stream.digest()
    );
}

#[test]
fn canonical_serve_matches_golden_track_at_1_and_4_workers() {
    for workers in [1usize, 4] {
        let report = canonical_serve(workers);
        assert_eq!(report.replies(), 256, "workers {workers}: dropped replies");
        assert_eq!(
            report.digest(),
            GOLDEN_REPLY_DIGEST,
            "workers {workers}: reply digest drifted to {:#018x}",
            report.digest()
        );
        assert_eq!(
            report.pages_read(),
            GOLDEN_PAGES_READ,
            "workers {workers}: pages read drifted"
        );
        assert_eq!(
            (report.cache_hits(), report.cache_lookups()),
            GOLDEN_CACHE,
            "workers {workers}: cache counters drifted"
        );
    }
}
