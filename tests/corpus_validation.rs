//! Corpus-wide validation: every algorithm, every workload *shape* of
//! the paper's Table 1 grid (scaled down), checked against the oracle.
//!
//! The experiment harness runs the full-size corpus for measurement; this
//! test runs a miniature of the same F × l grid so that a regression in
//! any algorithm on any workload shape fails CI rather than skewing a
//! report.

use tc_study::core::prelude::*;
use tc_study::graph::{closure, DagGenerator};

const N: usize = 250;

fn mini_corpus() -> Vec<(String, tc_study::graph::Graph)> {
    let mut out = Vec::new();
    for f in [2.0, 5.0, 20.0] {
        for l in [10usize, 50, 250] {
            out.push((
                format!("F={f},l={l}"),
                DagGenerator::new(N, f, l).seed(0xABCD).generate(),
            ));
        }
    }
    out
}

#[test]
fn full_closure_entire_grid_all_algorithms() {
    for (name, g) in mini_corpus() {
        let expect = closure::ptc_answer(&g, &(0..N as u32).collect::<Vec<_>>());
        let mut db = Database::build(&g, true).unwrap();
        let cfg = SystemConfig::default().collecting();
        for algo in Algorithm::ALL {
            let res = db.run(&Query::full(), algo, &cfg).unwrap();
            assert_eq!(
                res.answer.as_deref().unwrap(),
                &expect[..],
                "{algo} on {name}"
            );
        }
    }
}

#[test]
fn selections_entire_grid_all_algorithms() {
    for (name, g) in mini_corpus() {
        for s in [1usize, 4, 25] {
            let sources: Vec<u32> = (0..s as u32).map(|i| i * 9 % N as u32).collect();
            let expect = closure::ptc_answer(&g, &sources);
            let mut db = Database::build(&g, true).unwrap();
            let cfg = SystemConfig::default().collecting();
            for algo in Algorithm::ALL {
                let res = db
                    .run(&Query::partial(sources.clone()), algo, &cfg)
                    .unwrap();
                assert_eq!(
                    res.answer.as_deref().unwrap(),
                    &expect[..],
                    "{algo} on {name} s={s}"
                );
            }
        }
    }
}

#[test]
fn shape_claims_hold_on_the_mini_corpus() {
    // The headline orderings the paper reports, asserted at mini scale so
    // regressions in the cost model surface as failures.
    let deep = DagGenerator::new(N, 5.0, 10).seed(7).generate(); // narrow
    let wide = DagGenerator::new(N, 20.0, 250).seed(7).generate(); // wide
    let cfg = SystemConfig::default();
    let sources: Vec<u32> = (0..4).collect();

    // Narrow graph: JKB2 beats BTC on selections (Table 4, low width).
    let mut db = Database::build(&deep, true).unwrap();
    let btc = db
        .run(&Query::partial(sources.clone()), Algorithm::Btc, &cfg)
        .unwrap();
    let jkb2 = db
        .run(&Query::partial(sources.clone()), Algorithm::Jkb2, &cfg)
        .unwrap();
    assert!(
        jkb2.metrics.total_io() < btc.metrics.total_io(),
        "narrow: JKB2 {} vs BTC {}",
        jkb2.metrics.total_io(),
        btc.metrics.total_io()
    );

    // Full closure: BTC beats SPN (Fig 7a) yet SPN has fewer duplicates
    // (Fig 7b), and Seminaive loses by a wide margin (§8).
    let mut db = Database::build(&wide, true).unwrap();
    let btc = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
    let spn = db.run(&Query::full(), Algorithm::Spn, &cfg).unwrap();
    let semi = db.run(&Query::full(), Algorithm::Seminaive, &cfg).unwrap();
    assert!(btc.metrics.total_io() < spn.metrics.total_io());
    assert!(spn.metrics.duplicates < btc.metrics.duplicates);
    assert!(semi.metrics.total_io() > 3 * btc.metrics.total_io());

    // Marking percentage reflects redundancy: wide graph ≫ narrow graph.
    let mut db_deep = Database::build(&deep, false).unwrap();
    let btc_deep = db_deep.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
    assert!(btc.metrics.marking_pct() > btc_deep.metrics.marking_pct());
}
