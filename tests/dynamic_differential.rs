//! Differential gate for dynamic maintenance on the canonical G5
//! workload: after every batch of the canonical seeded update stream,
//! the incrementally maintained closure must be bit-identical to a
//! from-scratch recompute — tuples, per-apply `metrics ≡ replay(trace)`,
//! and trace digests — on both storage backends.
//!
//! The stream is mixed churn, so both maintenance paths (seminaive
//! delta propagation for inserts, DRed overdelete/rederive for deletes)
//! are exercised; an assertion below holds the stream to that.

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::{closure, DagGenerator, Graph, NodeId, StreamKind, UpdateOp, UpdateStream};
use tc_study::storage::Backend;
use tc_study::trace::{replay, DigestSink, ReplayedMetrics, Tracer, VecSink};

/// The canonical G5 instance every golden suite uses.
fn canonical_graph() -> Graph {
    DagGenerator::new(2000, 5.0, 200).seed(7).generate()
}

/// The canonical update stream: mixed churn, 2 batches of 8 ops,
/// locality 200 (the family's `l`), pinned seed.
fn canonical_stream(g: &Graph) -> UpdateStream {
    UpdateStream::generate(g, StreamKind::Mixed, 2, 8, 200, 0xD41A_0007)
}

fn oracle(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let all: Vec<NodeId> = (0..g.n() as NodeId).collect();
    closure::ptc_answer(g, &all)
}

#[test]
fn canonical_stream_exercises_both_paths() {
    let g = canonical_graph();
    let s = canonical_stream(&g);
    let inserts = s.insert_count();
    assert!(inserts > 0, "canonical stream has no inserts");
    assert!(s.op_count() > inserts, "canonical stream has no deletes");
}

#[test]
fn incremental_equals_scratch_after_every_batch() {
    let g = canonical_graph();
    // One VecSink across the whole stream; each apply's events are the
    // slice appended since the previous apply (every apply is one
    // complete RunBegin..RunEnd envelope).
    let sink = Arc::new(VecSink::unbounded());
    let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(sink.clone()));
    let mut dyn_tc = DynamicClosure::build(&g, &cfg).expect("build");
    let scratch_cfg = SystemConfig::with_buffer(20);
    let mut live = g.clone();
    let mut seen = 0usize;
    for (i, batch) in canonical_stream(&g).batches().iter().enumerate() {
        for op in batch {
            match *op {
                UpdateOp::Insert(u, v) => live.add_arc(u, v),
                UpdateOp::Delete(u, v) => live.remove_arc(u, v),
            };
        }
        let res = dyn_tc.apply(batch).expect("apply");
        assert_eq!(sink.dropped(), 0, "batch {i}: VecSink dropped events");

        // metrics ≡ replay for this apply's event slice.
        let events = sink.events();
        let replayed = replay(events[seen..].iter().cloned()).expect("replay");
        seen = events.len();
        let expected = res.metrics.to_replayed();
        assert_eq!(
            replayed,
            expected,
            "batch {i}: replay(trace) != metrics; field diff:\n{}",
            expected.diff(&replayed).join("\n")
        );

        // Incremental tuples == in-memory oracle == a from-scratch
        // rebuild read back through the disk roundtrip.
        let tuples = dyn_tc.tuples().expect("scan");
        assert_eq!(tuples, oracle(&live), "batch {i}: diverged from oracle");
        let mut scratch = DynamicClosure::build(&live, &scratch_cfg).expect("scratch build");
        assert_eq!(
            tuples,
            scratch.tuples().expect("scratch scan"),
            "batch {i}: incremental != from-scratch rebuild"
        );
        assert_eq!(
            dyn_tc.tuple_count(),
            scratch.tuple_count(),
            "batch {i}: tuple counts diverged"
        );
    }
}

/// Everything one maintenance stream exposes, in comparable form.
struct Observed {
    digest_hash: u64,
    digest_count: u64,
    per_batch: Vec<(u64, u64, u64, ReplayedMetrics)>,
    final_tuples: usize,
}

/// Runs the canonical stream on the given backend: one DigestSink folds
/// the whole trace, and each apply contributes its tuple delta, total
/// I/O and replay-comparable metrics view.
fn run_stream(backend: Backend) -> Observed {
    let g = canonical_graph();
    let sink = Arc::new(DigestSink::new());
    let cfg = SystemConfig::with_buffer(20)
        .backend(backend.clone())
        .traced(Tracer::new(sink.clone()));
    let mut dyn_tc = DynamicClosure::build(&g, &cfg).expect("build");
    assert_eq!(dyn_tc.backend_name(), backend.name(), "wrong backend");
    let mut per_batch = Vec::new();
    for batch in canonical_stream(&g).batches() {
        let res = dyn_tc.apply(batch).expect("apply");
        per_batch.push((
            res.inserted,
            res.removed,
            res.metrics.total_io(),
            res.metrics.to_replayed(),
        ));
    }
    let d = sink.digest();
    Observed {
        digest_hash: d.hash,
        digest_count: d.count,
        per_batch,
        final_tuples: dyn_tc.tuple_count(),
    }
}

#[test]
fn maintenance_is_bit_identical_on_sim_and_file() {
    let sim = run_stream(Backend::Sim);
    let file = run_stream(Backend::file_temp());
    assert_eq!(
        (sim.digest_hash, sim.digest_count),
        (file.digest_hash, file.digest_count),
        "maintenance trace digest diverged between sim and file backends"
    );
    assert_eq!(sim.per_batch.len(), file.per_batch.len());
    for (i, (s, f)) in sim.per_batch.iter().zip(&file.per_batch).enumerate() {
        assert_eq!(s.0, f.0, "batch {i}: inserted diverged");
        assert_eq!(s.1, f.1, "batch {i}: removed diverged");
        assert_eq!(s.2, f.2, "batch {i}: total I/O diverged");
        assert_eq!(s.3, f.3, "batch {i}: replayed metrics diverged");
    }
    assert_eq!(sim.final_tuples, file.final_tuples);
}
