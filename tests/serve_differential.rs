//! Differential harness for the serving layer: served replies must be
//! bit-identical to direct engine answers.
//!
//! The service answers from a frozen snapshot (REACHINDEX labels for
//! `reach`, the materialized closure for `ptc`, a guided index walk
//! for `path`) — none of that code is shared with the nine algorithms'
//! query paths, so agreement is strong evidence for both sides. Three
//! contracts on the canonical G5 workload (n = 2000, F = 5, l = 200,
//! seed 7):
//!
//! 1. **Answer equivalence** — served `ptc` rows equal the partial-
//!    closure answer of every one of the nine algorithms, and served
//!    `reach`/`path` replies agree with closure membership, for the
//!    canonical sources {11, 503, 977}.
//! 2. **Backend invariance** — per-reply FNV-1a digest sequences are
//!    identical whether the snapshot was frozen off the simulated or
//!    the file-backed store.
//! 3. **Worker invariance** — the full served-reply digest sequence of
//!    the canonical stream is identical at 1 and 3 workers.

use std::sync::{Arc, OnceLock};
use tc_study::core::prelude::*;
use tc_study::graph::{closure, DagGenerator, Graph, NodeId};
use tc_study::serve::{QueryStream, Reply, Request, ServeConfig, Service, Session, SessionConfig};
use tc_study::storage::Backend;

fn canonical_graph() -> Graph {
    DagGenerator::new(2000, 5.0, 200).seed(7).generate()
}

const SOURCES: [NodeId; 3] = [11, 503, 977];

/// One shared sim-backed snapshot for the whole suite (freezing G5 is
/// the expensive step; every test reads it immutably).
fn sim_snapshot() -> Arc<ClosedSnapshot> {
    static SNAP: OnceLock<Arc<ClosedSnapshot>> = OnceLock::new();
    Arc::clone(SNAP.get_or_init(|| {
        let g = canonical_graph();
        Arc::new(ClosedSnapshot::build(&g, &SystemConfig::with_buffer(20)).expect("freeze G5"))
    }))
}

fn file_snapshot() -> Arc<ClosedSnapshot> {
    let g = canonical_graph();
    let cfg = SystemConfig::with_buffer(20).backend(Backend::File { dir: None });
    Arc::new(ClosedSnapshot::build(&g, &cfg).expect("freeze G5 on the file store"))
}

/// The per-source rows of a partial-closure answer (sources ascending,
/// rows ascending — the engine's canonical answer order).
fn rows_of(answer: &[(NodeId, NodeId)]) -> Vec<(NodeId, Vec<NodeId>)> {
    let mut out: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for &(s, v) in answer {
        match out.last_mut() {
            Some((cur, row)) if *cur == s => row.push(v),
            _ => out.push((s, vec![v])),
        }
    }
    out
}

#[test]
fn served_ptc_rows_match_all_nine_algorithms_on_g5() {
    let g = canonical_graph();
    let snap = sim_snapshot();
    let mut session = Session::new(snap, &SessionConfig::default(), 0);
    let mut served: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for &u in &SOURCES {
        match session.handle(&Request::Ptc { u }).expect("serve ptc") {
            Reply::Ptc(row) => served.push((u, row)),
            other => panic!("ptc({u}) answered with {other:?}"),
        }
    }
    // Sources with empty rows are absent from engine answers.
    let served_nonempty: Vec<_> = served.iter().filter(|(_, r)| !r.is_empty()).collect();

    let mut db = Database::build(&g, true).expect("build database");
    let cfg = SystemConfig::with_buffer(20).collecting();
    let query = Query::partial(SOURCES.to_vec());
    for algo in Algorithm::WITH_INDEX {
        let res = db.run(&query, algo, &cfg).expect("run");
        let rows = rows_of(res.answer.as_deref().expect("collected answer"));
        assert_eq!(
            served_nonempty.len(),
            rows.len(),
            "served sources vs {algo} on canonical G5"
        );
        for ((su, srow), (au, arow)) in served_nonempty.iter().zip(&rows) {
            assert_eq!((su, srow), (au, arow), "served ptc vs {algo}");
        }
    }
}

#[test]
fn served_reach_and_path_agree_with_closure_membership() {
    let g = canonical_graph();
    let snap = sim_snapshot();
    let mut session = Session::new(snap, &SessionConfig::default().cache_sources(0), 1);
    for &u in &SOURCES {
        let row = closure::successors_of(&g, u);
        for v in (0..g.n() as NodeId).step_by(97) {
            let expect = row.binary_search(&v).is_ok();
            match session.handle(&Request::Reach { u, v }).expect("reach") {
                Reply::Reach(b) => assert_eq!(b, expect, "reach({u},{v})"),
                other => panic!("reach answered {other:?}"),
            }
            match session.handle(&Request::Path { u, v }).expect("path") {
                Reply::Path(None) => assert!(!expect, "path({u},{v}) missing"),
                Reply::Path(Some(hops)) => {
                    assert!(expect, "path({u},{v}) invented a connection");
                    assert_eq!((hops[0], *hops.last().expect("nonempty")), (u, v));
                    for w in hops.windows(2) {
                        assert!(g.has_arc(w[0], w[1]), "fabricated arc {}→{}", w[0], w[1]);
                    }
                }
                other => panic!("path answered {other:?}"),
            }
        }
    }
}

/// Per-reply digest sequence of a full canonical-stream serve.
fn reply_digests(snap: Arc<ClosedSnapshot>, workers: usize) -> (Vec<u64>, u64, u64) {
    let service = Service::new(snap);
    let stream = QueryStream::canonical_g5();
    let report = service
        .serve(&stream, &ServeConfig::default().workers(workers))
        .expect("serve canonical stream");
    let digests = report
        .clients
        .iter()
        .flat_map(|c| c.records.iter().map(|r| r.digest))
        .collect();
    (digests, report.pages_read(), report.cache_hits())
}

#[test]
fn reply_digests_are_identical_across_backends_and_workers() {
    let sim1 = reply_digests(sim_snapshot(), 1);
    let sim3 = reply_digests(sim_snapshot(), 3);
    let file1 = reply_digests(file_snapshot(), 1);
    assert_eq!(sim1, sim3, "worker count leaked into the served replies");
    assert_eq!(sim1, file1, "backend leaked into the served replies");
}
