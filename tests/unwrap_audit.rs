//! Error-propagation audit: no `unwrap()`/`expect()` on I/O paths.
//!
//! The fault-injection layer is only as good as the error plumbing above
//! it: a single `unwrap()` between `DiskSim` and `Database::run` turns a
//! typed, injectable `StorageError` into a panic. This test freezes the
//! audit — the page-transfer paths of `tc-storage` and `tc-buffer` must
//! stay free of `unwrap()`/`expect()` outside `#[cfg(test)]` modules.
//! The same rule covers all of `crates/bench/src`: an experiment cell
//! failure must surface as a typed [`ExpError`] naming the cell, never a
//! worker-thread panic. And it covers all of `crates/trace/src`: a trace
//! sink rides inside every instrumented run, so a sink I/O failure (or a
//! poisoned sink mutex) must never panic the engine it is observing.
//! And it covers all of `crates/reach/src`: the reachability index
//! persists its chains and labels through the same store/pool plumbing
//! as the engines, under the same fault-injection layer. The CI grep
//! gate enforces the same rule repo-side; this test makes it fail
//! locally first.
//!
//! [`ExpError`]: tc_bench::experiments::ExpError

use std::fs;
use std::path::Path;

/// Files on the physical page-transfer path (the issue's hard floor),
/// plus the dynamic-maintenance layer: `DynamicClosure::apply` owns the
/// same store/pool lifecycle as the engine, and `UpdateStream` feeds it.
const IO_PATH_FILES: &[&str] = &[
    "crates/storage/src/disk.rs",
    "crates/storage/src/pager.rs",
    "crates/storage/src/relation.rs",
    "crates/storage/src/extsort.rs",
    "crates/storage/src/store.rs",
    "crates/storage/src/file_store.rs",
    "crates/storage/src/frozen.rs",
    "crates/buffer/src/pool.rs",
    "crates/core/src/dynamic.rs",
    "crates/core/src/snapshot.rs",
    "crates/graph/src/update.rs",
];

/// Audited sites that are allowed to stay: compile-time-constant offset
/// conversions in the page accessors (documented as programming errors,
/// not data-dependent conditions). Format: (file, needle).
const ALLOWLIST: &[(&str, &str)] = &[("crates/storage/src/page.rs", "expect(\"in-page offset\")")];

/// All `.rs` files under `dir` (recursing into `bin/`, `experiments/`,
/// ...), as repo-relative paths in sorted order.
fn rust_files_under(repo: &Path, dir: &str) -> Vec<String> {
    let mut stack = vec![repo.join(dir)];
    let mut out = Vec::new();
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).unwrap_or_else(|e| panic!("read_dir {}: {e}", d.display()));
        for entry in entries {
            let path = entry
                .unwrap_or_else(|e| panic!("read_dir entry: {e}"))
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(repo)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .into_owned();
                out.push(rel);
            }
        }
    }
    out.sort();
    out
}

fn violations_in(repo: &Path, rel: &str) -> Vec<String> {
    let text = fs::read_to_string(repo.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
    let mut out = Vec::new();
    let mut in_tests = false;
    for (no, line) in text.lines().enumerate() {
        // Test modules are the trailing section of every file in this
        // workspace; everything after the marker is exempt.
        if line.contains("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        let code = line.trim_start();
        if code.starts_with("//") {
            continue; // doc examples and comments
        }
        if !code.contains(".unwrap()") && !code.contains(".expect(") {
            continue;
        }
        if ALLOWLIST
            .iter()
            .any(|&(f, needle)| f == rel && code.contains(needle))
        {
            continue;
        }
        out.push(format!("{rel}:{}: {}", no + 1, code));
    }
    out
}

#[test]
fn io_paths_stay_free_of_unwrap_and_expect() {
    // CARGO_MANIFEST_DIR is the workspace root: the tests/ dir belongs
    // to the umbrella crate at the repository top level.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for rel in IO_PATH_FILES {
        violations.extend(violations_in(repo, rel));
    }
    assert!(
        violations.is_empty(),
        "unwrap()/expect() on I/O paths (convert to StorageResult plumbing, \
         or add an audited allowlist entry here AND in .github/workflows/ci.yml):\n{}",
        violations.join("\n")
    );
}

#[test]
fn bench_run_paths_stay_free_of_unwrap_and_expect() {
    // The experiment scheduler joins worker threads and reassembles cell
    // results; a panic inside a cell would tear down the whole sweep
    // instead of reporting which coordinates failed. Audit every file in
    // the bench crate, including the binaries and the section modules.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_files_under(repo, "crates/bench/src");
    assert!(
        files.len() >= 15,
        "bench audit walked only {} files — directory layout changed?",
        files.len()
    );
    let mut violations = Vec::new();
    for rel in &files {
        violations.extend(violations_in(repo, rel));
    }
    assert!(
        violations.is_empty(),
        "unwrap()/expect() on bench run paths (convert to ExpResult plumbing, \
         or add an audited allowlist entry here AND in .github/workflows/ci.yml):\n{}",
        violations.join("\n")
    );
}

#[test]
fn trace_paths_stay_free_of_unwrap_and_expect() {
    // A Tracer is threaded through the engine, buffer pool and disk of
    // every instrumented run; a panic inside a sink would take the run
    // down with it. Sink errors are deferred (`JsonlSink::finish`) and
    // mutex poisoning is recovered, never unwrapped.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_files_under(repo, "crates/trace/src");
    assert!(
        files.len() >= 5,
        "trace audit walked only {} files — directory layout changed?",
        files.len()
    );
    let mut violations = Vec::new();
    for rel in &files {
        violations.extend(violations_in(repo, rel));
    }
    assert!(
        violations.is_empty(),
        "unwrap()/expect() in tc-trace (defer sink errors, recover poisoned \
         locks, or add an audited allowlist entry here AND in \
         .github/workflows/ci.yml):\n{}",
        violations.join("\n")
    );
}

#[test]
fn profile_paths_stay_free_of_unwrap_and_expect() {
    // A ProfileSink rides inside instrumented runs exactly like a trace
    // sink, and `tcq analyze` folds untrusted JSONL from disk; both must
    // surface failures as typed errors (`JsonlError`, recovered mutex
    // poisoning), never a panic mid-run or mid-parse.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_files_under(repo, "crates/profile/src");
    assert!(
        files.len() >= 4,
        "profile audit walked only {} files — directory layout changed?",
        files.len()
    );
    let mut violations = Vec::new();
    for rel in &files {
        violations.extend(violations_in(repo, rel));
    }
    assert!(
        violations.is_empty(),
        "unwrap()/expect() in tc-profile (return typed parse/IO errors, \
         recover poisoned locks, or add an audited allowlist entry here AND \
         in .github/workflows/ci.yml):\n{}",
        violations.join("\n")
    );
}

#[test]
fn reach_paths_stay_free_of_unwrap_and_expect() {
    // The reachability index builds and queries through the same
    // PageStore/BufferPool plumbing as the engines, under the same
    // fault-injection layer: a storage failure during chain persistence
    // or a label-row read must surface as a typed StorageError, never a
    // panic inside `ReachIndex::build` or the REACHINDEX engine arm.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_files_under(repo, "crates/reach/src");
    assert!(
        files.len() >= 3,
        "reach audit walked only {} files — directory layout changed?",
        files.len()
    );
    let mut violations = Vec::new();
    for rel in &files {
        violations.extend(violations_in(repo, rel));
    }
    assert!(
        violations.is_empty(),
        "unwrap()/expect() in tc-reach (convert to StorageResult plumbing, \
         or add an audited allowlist entry here AND in \
         .github/workflows/ci.yml):\n{}",
        violations.join("\n")
    );
}

#[test]
fn serve_paths_stay_free_of_unwrap_and_expect() {
    // The service loop runs sessions on worker threads over shared
    // snapshot state: a panic inside a session poisons the report
    // mutexes of the whole serve, and an unwrap on a session's read
    // path would turn an injectable transient fault into a torn-down
    // run instead of a typed ServeError naming client and sequence.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_files_under(repo, "crates/serve/src");
    assert!(
        files.len() >= 5,
        "serve audit walked only {} files — directory layout changed?",
        files.len()
    );
    let mut violations = Vec::new();
    for rel in &files {
        violations.extend(violations_in(repo, rel));
    }
    assert!(
        violations.is_empty(),
        "unwrap()/expect() in tc-serve (propagate StorageResult, recover \
         poisoned locks with into_inner, or add an audited allowlist entry \
         here AND in .github/workflows/ci.yml):\n{}",
        violations.join("\n")
    );
}

#[test]
fn obs_paths_stay_free_of_unwrap_and_expect() {
    // The span recorder and metrics registry ride inside engine runs
    // and the serve loop's worker threads; a panic in the wall-clock
    // layer would tear down the deterministic run it is only supposed
    // to observe. Mutex poisoning is recovered (`lock_unpoisoned`),
    // parse errors surface as typed `Result`s, never unwrapped.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_files_under(repo, "crates/obs/src");
    assert!(
        files.len() >= 3,
        "obs audit walked only {} files — directory layout changed?",
        files.len()
    );
    let mut violations = Vec::new();
    for rel in &files {
        violations.extend(violations_in(repo, rel));
    }
    assert!(
        violations.is_empty(),
        "unwrap()/expect() in tc-obs (recover poisoned locks with \
         lock_unpoisoned, return typed parse errors, or add an audited \
         allowlist entry here AND in .github/workflows/ci.yml):\n{}",
        violations.join("\n")
    );
}

#[test]
fn allowlist_entries_still_exist() {
    // A stale allowlist hides future violations behind dead entries.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    for &(rel, needle) in ALLOWLIST {
        let text = fs::read_to_string(repo.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        assert!(
            text.contains(needle),
            "allowlist entry no longer present, remove it: {rel} `{needle}`"
        );
    }
}
