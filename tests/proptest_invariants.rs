//! Property-based tests over the core invariants of the study, on the
//! in-workspace `tc-det` harness (seeded cases, greedy shrinking —
//! replay a failure with the printed `TC_DET_SEED=...`).

use tc_study::core::prelude::*;
use tc_study::det::check::{self, Checker};
use tc_study::det::{require, require_eq, Rng};
use tc_study::graph::{
    closure, condensation, model, transitive_reduction, DagGenerator, Graph, RectangleModel,
};

/// Raw generated input: node count plus unconstrained arc pairs. Kept
/// raw (rather than as a `Graph`) so shrinking can drop arcs directly.
type RawGraph = (usize, Vec<(u32, u32)>);

fn raw_graph(rng: &mut Rng, max_n: usize, max_arcs: usize) -> RawGraph {
    let n = rng.random_range(2..max_n);
    let pairs = check::vec_of(rng, 0..max_arcs, |r| {
        (r.random_range(0..n as u32), r.random_range(0..n as u32))
    });
    (n, pairs)
}

/// A DAG: each pair is oriented low -> high, self-loops dropped.
fn dag_of(&(n, ref pairs): &RawGraph) -> Graph {
    Graph::from_arcs(
        n,
        pairs.iter().filter_map(|&(a, b)| {
            use std::cmp::Ordering::*;
            match a.cmp(&b) {
                Less => Some((a, b)),
                Greater => Some((b, a)),
                Equal => None,
            }
        }),
    )
}

/// An arbitrary (possibly cyclic) graph.
fn any_of(&(n, ref pairs): &RawGraph) -> Graph {
    Graph::from_arcs(n, pairs.iter().copied())
}

fn shrink_raw(&(n, ref pairs): &RawGraph) -> Vec<RawGraph> {
    check::shrink_vec(pairs)
        .into_iter()
        .map(|p| (n, p))
        .collect()
}

/// TC(TC(G)) = TC(G): closure is idempotent.
#[test]
fn closure_is_idempotent() {
    Checker::new("closure_is_idempotent").cases(48).run(
        |rng| raw_graph(rng, 60, 200),
        shrink_raw,
        |raw| {
            let g = dag_of(raw);
            let tc1 = closure::dfs_closure(&g);
            let closed = Graph::from_arcs(
                g.n(),
                (0..g.n() as u32).flat_map(|u| tc1.row_ones(u).into_iter().map(move |v| (u, v))),
            );
            let tc2 = closure::dfs_closure(&closed);
            require_eq!(tc1, tc2);
            Ok(())
        },
    );
}

/// The three in-memory oracles agree on DAGs.
#[test]
fn oracles_agree() {
    Checker::new("oracles_agree").cases(48).run(
        |rng| raw_graph(rng, 60, 200),
        shrink_raw,
        |raw| {
            let g = dag_of(raw);
            let a = closure::dfs_closure(&g);
            require_eq!(a, closure::warshall(&g));
            require_eq!(a, closure::warren(&g));
            Ok(())
        },
    );
}

/// Theorem 1: H(G) = H(TR(G)) = H(TC(G)); W(TR) <= W(G) <= W(TC).
#[test]
fn rectangle_model_theorem() {
    Checker::new("rectangle_model_theorem").cases(48).run(
        |rng| raw_graph(rng, 50, 150),
        shrink_raw,
        |raw| {
            let g = dag_of(raw);
            let tr = transitive_reduction(&g);
            let tc_m = closure::dfs_closure(&g);
            let tc = Graph::from_arcs(
                g.n(),
                (0..g.n() as u32).flat_map(|u| tc_m.row_ones(u).into_iter().map(move |v| (u, v))),
            );
            let (mg, mtr, mtc) = (
                RectangleModel::of(&g),
                RectangleModel::of(&tr),
                RectangleModel::of(&tc),
            );
            require!((mg.height - mtr.height).abs() < 1e-9, "H(G) != H(TR)");
            require!((mg.height - mtc.height).abs() < 1e-9, "H(G) != H(TC)");
            require!(mtr.width <= mg.width + 1e-9, "W(TR) > W(G)");
            require!(mg.width <= mtc.width + 1e-9, "W(G) > W(TC)");
            Ok(())
        },
    );
}

/// The engine's BTC marking realizes the transitive reduction.
#[test]
fn marking_is_transitive_reduction() {
    Checker::new("marking_is_transitive_reduction")
        .cases(48)
        .run(
            |rng| raw_graph(rng, 50, 150),
            shrink_raw,
            |raw| {
                let g = dag_of(raw);
                let tr = transitive_reduction(&g);
                let mut db = Database::build(&g, false).unwrap();
                let res = db
                    .run(&Query::full(), Algorithm::Btc, &SystemConfig::default())
                    .unwrap();
                require_eq!(res.metrics.unions as usize, tr.arc_count());
                require_eq!(
                    res.metrics.arcs_marked as usize,
                    g.arc_count() - tr.arc_count()
                );
                Ok(())
            },
        );
}

/// Every disk-based algorithm equals the oracle on random DAGs and
/// random source sets.
#[test]
fn algorithms_match_oracle() {
    Checker::new("algorithms_match_oracle").cases(48).run(
        |rng| {
            let raw = raw_graph(rng, 40, 120);
            let n = raw.0 as u32;
            let sources = check::vec_of(rng, 1..5, |r| r.random_range(0..n));
            (raw, sources)
        },
        |(raw, sources)| {
            let mut out: Vec<(RawGraph, Vec<u32>)> = shrink_raw(raw)
                .into_iter()
                .map(|r| (r, sources.clone()))
                .collect();
            if sources.len() > 1 {
                out.extend(
                    check::shrink_vec(sources)
                        .into_iter()
                        .filter(|s| !s.is_empty())
                        .map(|s| (raw.clone(), s)),
                );
            }
            out
        },
        |(raw, sources)| {
            let g = dag_of(raw);
            let expect = closure::ptc_answer(&g, sources);
            let mut db = Database::build(&g, true).unwrap();
            let cfg = SystemConfig::default().collecting();
            for algo in Algorithm::ALL {
                let res = db
                    .run(&Query::partial(sources.clone()), algo, &cfg)
                    .unwrap();
                require_eq!(res.answer.as_deref().unwrap(), &expect[..], "{}", algo);
            }
            Ok(())
        },
    );
}

/// Condensation is acyclic and closure-equivalent on arbitrary graphs.
#[test]
fn condensation_preserves_reachability() {
    Checker::new("condensation_preserves_reachability")
        .cases(48)
        .run(
            |rng| raw_graph(rng, 40, 160),
            shrink_raw,
            |raw| {
                let g = any_of(raw);
                let c = condensation(&g);
                require!(c.graph.is_acyclic(), "condensation has a cycle");
                let direct = closure::dfs_closure(&g);
                let ctc = closure::dfs_closure(&c.graph);
                for u in 0..g.n() as u32 {
                    for v in 0..g.n() as u32 {
                        let (cu, cv) = (c.component[u as usize], c.component[v as usize]);
                        let reachable = if cu == cv {
                            u == v && c.members[cu as usize].len() > 1
                                || (u != v && c.members[cu as usize].len() > 1)
                        } else {
                            ctc.get(cu, cv)
                        };
                        require_eq!(direct.get(u, v), reachable, "({}, {})", u, v);
                    }
                }
                Ok(())
            },
        );
}

/// Node levels are 1 + max over children, everywhere.
#[test]
fn levels_definition() {
    Checker::new("levels_definition").cases(48).run(
        |rng| raw_graph(rng, 60, 200),
        shrink_raw,
        |raw| {
            let g = dag_of(raw);
            let levels = model::node_levels(&g);
            for u in 0..g.n() as u32 {
                let expect = 1 + g
                    .children(u)
                    .iter()
                    .map(|&v| levels[v as usize])
                    .max()
                    .unwrap_or(0);
                require_eq!(levels[u as usize], expect);
            }
            Ok(())
        },
    );
}

/// Metric consistency on generated workloads.
#[test]
fn metric_invariants() {
    Checker::new("metric_invariants").cases(24).run(
        |rng| (rng.random_range(0..500u64), rng.random_range(1..8usize)),
        check::shrink_none,
        |&(seed, s)| {
            let g = DagGenerator::new(150, 4.0, 40).seed(seed).generate();
            let sources: Vec<u32> = (0..s as u32 * 13 % 150).step_by(13).collect();
            if sources.is_empty() {
                return Ok(()); // vacuous case (the old prop_assume!)
            }
            let mut db = Database::build(&g, true).unwrap();
            for algo in [
                Algorithm::Btc,
                Algorithm::Bj,
                Algorithm::Jkb2,
                Algorithm::Srch,
            ] {
                let res = db
                    .run(
                        &Query::partial(sources.clone()),
                        algo,
                        &SystemConfig::default(),
                    )
                    .unwrap();
                let m = &res.metrics;
                require!(m.arcs_marked <= m.arcs_processed, "{}", algo);
                require!(m.source_tuples <= m.tuples_generated, "{}", algo);
                // List-based and tree-based algorithms perform at most one
                // union per processed arc. (SRCH is exempt: it counts one
                // union per *visited node*, which on sparse fringes can
                // exceed the arc count.)
                if algo != Algorithm::Srch {
                    require!(m.unions <= m.arcs_processed, "{}", algo);
                }
                require!(
                    m.buffer.hits + m.buffer.misses == m.buffer.requests,
                    "{}",
                    algo
                );
                let by_kind: u64 = m.io_by_kind.iter().map(|&(r, w)| r + w).sum();
                require_eq!(m.total_io(), by_kind, "{}", algo);
                require!(m.selection_efficiency() <= 1.0 + 1e-9, "{}", algo);
            }
            Ok(())
        },
    );
}
