//! Property-based tests over the core invariants of the study.

use proptest::prelude::*;
use tc_study::core::prelude::*;
use tc_study::graph::{
    closure, condensation, model, transitive_reduction, DagGenerator, Graph, RectangleModel,
};

/// Strategy: a random DAG via random (low -> high) arcs.
fn dag(max_n: usize, max_arcs: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_arcs).prop_map(
            move |pairs| {
                Graph::from_arcs(
                    n,
                    pairs.into_iter().filter_map(|(a, b)| {
                        use std::cmp::Ordering::*;
                        match a.cmp(&b) {
                            Less => Some((a, b)),
                            Greater => Some((b, a)),
                            Equal => None,
                        }
                    }),
                )
            },
        )
    })
}

/// Strategy: an arbitrary (possibly cyclic) graph.
fn any_graph(max_n: usize, max_arcs: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_arcs)
            .prop_map(move |pairs| Graph::from_arcs(n, pairs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TC(TC(G)) = TC(G): closure is idempotent.
    #[test]
    fn closure_is_idempotent(g in dag(60, 200)) {
        let tc1 = closure::dfs_closure(&g);
        let closed = Graph::from_arcs(
            g.n(),
            (0..g.n() as u32).flat_map(|u| {
                tc1.row_ones(u).into_iter().map(move |v| (u, v))
            }),
        );
        let tc2 = closure::dfs_closure(&closed);
        prop_assert_eq!(tc1, tc2);
    }

    /// The three in-memory oracles agree on DAGs.
    #[test]
    fn oracles_agree(g in dag(60, 200)) {
        let a = closure::dfs_closure(&g);
        prop_assert_eq!(&a, &closure::warshall(&g));
        prop_assert_eq!(&a, &closure::warren(&g));
    }

    /// Theorem 1: H(G) = H(TR(G)) = H(TC(G)); W(TR) <= W(G) <= W(TC).
    #[test]
    fn rectangle_model_theorem(g in dag(50, 150)) {
        let tr = transitive_reduction(&g);
        let tc_m = closure::dfs_closure(&g);
        let tc = Graph::from_arcs(
            g.n(),
            (0..g.n() as u32).flat_map(|u| tc_m.row_ones(u).into_iter().map(move |v| (u, v))),
        );
        let (mg, mtr, mtc) = (
            RectangleModel::of(&g),
            RectangleModel::of(&tr),
            RectangleModel::of(&tc),
        );
        prop_assert!((mg.height - mtr.height).abs() < 1e-9);
        prop_assert!((mg.height - mtc.height).abs() < 1e-9);
        prop_assert!(mtr.width <= mg.width + 1e-9);
        prop_assert!(mg.width <= mtc.width + 1e-9);
    }

    /// The engine's BTC marking realizes the transitive reduction.
    #[test]
    fn marking_is_transitive_reduction(g in dag(50, 150)) {
        let tr = transitive_reduction(&g);
        let mut db = Database::build(&g, false).unwrap();
        let res = db.run(&Query::full(), Algorithm::Btc, &SystemConfig::default()).unwrap();
        prop_assert_eq!(res.metrics.unions as usize, tr.arc_count());
        prop_assert_eq!(
            res.metrics.arcs_marked as usize,
            g.arc_count() - tr.arc_count()
        );
    }

    /// Every disk-based algorithm equals the oracle on random DAGs and
    /// random source sets.
    #[test]
    fn algorithms_match_oracle(
        g in dag(40, 120),
        raw_sources in proptest::collection::vec(0u32..40, 1..5),
    ) {
        let sources: Vec<u32> =
            raw_sources.into_iter().filter(|&s| (s as usize) < g.n()).collect();
        prop_assume!(!sources.is_empty());
        let expect = closure::ptc_answer(&g, &sources);
        let mut db = Database::build(&g, true).unwrap();
        let cfg = SystemConfig::default().collecting();
        for algo in Algorithm::ALL {
            let res = db.run(&Query::partial(sources.clone()), algo, &cfg).unwrap();
            prop_assert_eq!(res.answer.as_deref().unwrap(), &expect[..], "{}", algo);
        }
    }

    /// Condensation is acyclic and closure-equivalent on arbitrary graphs.
    #[test]
    fn condensation_preserves_reachability(g in any_graph(40, 160)) {
        let c = condensation(&g);
        prop_assert!(c.graph.is_acyclic());
        let direct = closure::dfs_closure(&g);
        let ctc = closure::dfs_closure(&c.graph);
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                let (cu, cv) = (c.component[u as usize], c.component[v as usize]);
                let reachable = if cu == cv {
                    u == v && c.members[cu as usize].len() > 1 || (u != v && c.members[cu as usize].len() > 1)
                } else {
                    ctc.get(cu, cv)
                };
                prop_assert_eq!(
                    direct.get(u, v),
                    reachable,
                    "({}, {})", u, v
                );
            }
        }
    }

    /// Node levels are 1 + max over children, everywhere.
    #[test]
    fn levels_definition(g in dag(60, 200)) {
        let levels = model::node_levels(&g);
        for u in 0..g.n() as u32 {
            let expect = 1 + g
                .children(u)
                .iter()
                .map(|&v| levels[v as usize])
                .max()
                .unwrap_or(0);
            prop_assert_eq!(levels[u as usize], expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Metric consistency on generated workloads.
    #[test]
    fn metric_invariants(seed in 0u64..500, s in 1usize..8) {
        let g = DagGenerator::new(150, 4.0, 40).seed(seed).generate();
        let sources: Vec<u32> = (0..s as u32 * 13 % 150).step_by(13).collect();
        prop_assume!(!sources.is_empty());
        let mut db = Database::build(&g, true).unwrap();
        for algo in [Algorithm::Btc, Algorithm::Bj, Algorithm::Jkb2, Algorithm::Srch] {
            let res = db
                .run(&Query::partial(sources.clone()), algo, &SystemConfig::default())
                .unwrap();
            let m = &res.metrics;
            prop_assert!(m.arcs_marked <= m.arcs_processed, "{}", algo);
            prop_assert!(m.source_tuples <= m.tuples_generated, "{}", algo);
            // List-based and tree-based algorithms perform at most one
            // union per processed arc. (SRCH is exempt: it counts one
            // union per *visited node*, which on sparse fringes can
            // exceed the arc count.)
            if algo != Algorithm::Srch {
                prop_assert!(m.unions <= m.arcs_processed, "{}", algo);
            }
            prop_assert!(m.buffer.hits + m.buffer.misses == m.buffer.requests, "{}", algo);
            let by_kind: u64 = m.io_by_kind.iter().map(|&(r, w)| r + w).sum();
            prop_assert_eq!(m.total_io(), by_kind, "{}", algo);
            prop_assert!(m.selection_efficiency() <= 1.0 + 1e-9, "{}", algo);
        }
    }
}
