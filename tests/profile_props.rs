//! Property test: the profile fold's attribution invariants on random
//! workloads.
//!
//! `golden_profile.rs` proves profile ≡ metrics on the canonical G5
//! workload; this test proves the same invariants on `tc-det`-generated
//! random small workloads across all eight algorithms, every
//! page-replacement policy, and optional transient-fault plans (replay
//! a failure with the printed `TC_DET_SEED=...`):
//!
//! 1. phase and per-kind attribution sums equal the engine's disk
//!    counters exactly;
//! 2. per-kind buffer stats sum to the pool's own counters;
//! 3. the cold/capacity/self miss classes partition the misses;
//! 4. resident pages never exceed the pool's frame count.

use std::sync::Arc;
use tc_study::buffer::PagePolicy;
use tc_study::core::prelude::*;
use tc_study::det::check::{self, Checker};
use tc_study::det::{require, require_eq, Rng};
use tc_study::graph::Graph;
use tc_study::profile::ProfileSink;
use tc_study::trace::Tracer;

const BUFFER_PAGES: usize = 8;

/// Raw generated input: node count plus unconstrained arc pairs (kept
/// raw so shrinking can drop arcs directly), a source set, a policy
/// index, and an optional fault seed.
type RawCase = ((usize, Vec<(u32, u32)>), Vec<u32>, usize, Option<u64>);

fn dag_of(&(n, ref pairs): &(usize, Vec<(u32, u32)>)) -> Graph {
    Graph::from_arcs(
        n,
        pairs.iter().filter_map(|&(a, b)| {
            use std::cmp::Ordering::*;
            match a.cmp(&b) {
                Less => Some((a, b)),
                Greater => Some((b, a)),
                Equal => None,
            }
        }),
    )
}

fn generate(rng: &mut Rng) -> RawCase {
    let n = rng.random_range(2..40usize);
    let pairs = check::vec_of(rng, 0..120, |r| {
        (r.random_range(0..n as u32), r.random_range(0..n as u32))
    });
    let sources = check::vec_of(rng, 1..4, |r| r.random_range(0..n as u32));
    let policy = rng.random_range(0..PagePolicy::ALL.len());
    let fault = rng
        .random_range(0..3u32)
        .eq(&0)
        .then(|| rng.random_range(0..1_000_000));
    ((n, pairs), sources, policy, fault)
}

fn shrink(case: &RawCase) -> Vec<RawCase> {
    let ((n, pairs), sources, policy, fault) = case;
    let mut out: Vec<RawCase> = check::shrink_vec(pairs)
        .into_iter()
        .map(|p| ((*n, p), sources.clone(), *policy, *fault))
        .collect();
    if fault.is_some() {
        // A fault-free version of the same case is always simpler.
        out.push(((*n, pairs.clone()), sources.clone(), *policy, None));
    }
    out
}

#[test]
fn profile_invariants_hold_on_random_workloads() {
    Checker::new("profile_invariants")
        .cases(24)
        .run(generate, shrink, |case| {
            let (raw, sources, policy, fault) = case;
            let g = dag_of(raw);
            let mut db = Database::build(&g, true).unwrap();
            for algo in Algorithm::ALL {
                let sink = Arc::new(ProfileSink::new());
                let mut cfg =
                    SystemConfig::with_buffer(BUFFER_PAGES).traced(Tracer::new(sink.clone()));
                cfg.page_policy = PagePolicy::ALL[*policy];
                if let Some(seed) = fault {
                    cfg.fault = Some(
                        FaultConfig::new(*seed)
                            .transient_reads(0.05)
                            .transient_writes(0.05),
                    );
                }
                // A fault plan may exhaust the retry budget; an erroring
                // run produces no metrics, so there is nothing to check.
                let Ok(res) = db.run(&Query::partial(sources.clone()), algo, &cfg) else {
                    continue;
                };
                let m = &res.metrics;
                let p = sink.finish();

                // 1. Attribution ≡ disk counters, per phase and kind.
                let (r, c) = (p.restructure_io(), p.compute_io());
                require_eq!(r.reads, m.restructure_io.reads, "{algo}: restr reads");
                require_eq!(r.writes, m.restructure_io.writes, "{algo}: restr writes");
                require_eq!(c.reads, m.compute_io.reads, "{algo}: compute reads");
                require_eq!(c.writes, m.compute_io.writes, "{algo}: compute writes");
                for (k, &(reads, writes)) in m.io_by_kind.iter().enumerate() {
                    let io = p.io_by_kind(k);
                    require_eq!(io.reads, reads, "{algo}: kind {k} reads");
                    require_eq!(io.writes, writes, "{algo}: kind {k} writes");
                }

                // 2. Per-kind buffer sums ≡ pool counters.
                let b = p.buffer_totals();
                require_eq!(b.requests, m.buffer.requests, "{algo}: requests");
                require_eq!(b.hits, m.buffer.hits, "{algo}: hits");
                require_eq!(b.misses, m.buffer.misses, "{algo}: misses");
                require_eq!(b.read_requests, m.buffer.read_requests, "{algo}");
                require_eq!(b.read_hits, m.buffer.read_hits, "{algo}: read hits");
                require_eq!(b.evictions, m.buffer.evictions, "{algo}: evictions");
                require_eq!(b.dirty_evictions, m.buffer.dirty_writebacks, "{algo}");
                require_eq!(b.flush_writes, m.buffer.flush_writes, "{algo}: flushes");
                require_eq!(p.retries, m.buffer.retries, "{algo}: retries");

                // 3. Miss classes partition the misses (totals and every
                // per-kind row).
                require_eq!(p.miss_totals().total(), b.misses, "{algo}: partition");
                for k in 0..tc_study::profile::KIND_SLOTS {
                    require_eq!(
                        p.misses[k].total(),
                        p.buffer[k].misses,
                        "{algo}: kind {k} miss partition"
                    );
                }

                // 4. Residency respects the pool bound.
                require!(
                    p.max_resident <= BUFFER_PAGES as u64,
                    "{algo}: {} resident pages in a {BUFFER_PAGES}-frame pool",
                    p.max_resident
                );
            }
            Ok(())
        });
}
