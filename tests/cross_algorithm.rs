//! Integration tests: every algorithm, every policy, every buffer size —
//! all must produce the oracle answer and consistent metrics.

use tc_study::core::prelude::*;
use tc_study::graph::{closure, DagGenerator, Graph};

fn grid_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "deep-sparse",
            DagGenerator::new(400, 2.0, 15).seed(1).generate(),
        ),
        (
            "shallow-sparse",
            DagGenerator::new(400, 2.0, 400).seed(2).generate(),
        ),
        (
            "deep-dense",
            DagGenerator::new(400, 10.0, 15).seed(3).generate(),
        ),
        (
            "shallow-dense",
            DagGenerator::new(400, 10.0, 400).seed(4).generate(),
        ),
        ("path", tc_study::graph::gen::path(300)),
        ("tree", tc_study::graph::gen::binary_tree(255)),
        ("layered", tc_study::graph::gen::layered(12, 12)),
    ]
}

#[test]
fn all_algorithms_agree_with_oracle_on_full_closure() {
    for (name, g) in grid_graphs() {
        let expect = closure::ptc_answer(&g, &(0..g.n() as u32).collect::<Vec<_>>());
        let mut db = Database::build(&g, true).unwrap();
        let cfg = SystemConfig::default().collecting();
        for algo in Algorithm::ALL {
            let res = db.run(&Query::full(), algo, &cfg).unwrap();
            assert_eq!(
                res.answer.as_deref().unwrap(),
                &expect[..],
                "{algo} on {name}"
            );
        }
    }
}

#[test]
fn all_algorithms_agree_with_oracle_on_selections() {
    for (name, g) in grid_graphs() {
        let sources: Vec<u32> = vec![0, 7, (g.n() / 2) as u32];
        let expect = closure::ptc_answer(&g, &sources);
        let mut db = Database::build(&g, true).unwrap();
        let cfg = SystemConfig::default().collecting();
        for algo in Algorithm::ALL {
            let res = db
                .run(&Query::partial(sources.clone()), algo, &cfg)
                .unwrap();
            assert_eq!(
                res.answer.as_deref().unwrap(),
                &expect[..],
                "{algo} on {name}"
            );
        }
    }
}

#[test]
fn every_page_policy_yields_the_same_answer() {
    let g = DagGenerator::new(500, 5.0, 120).seed(9).generate();
    let sources: Vec<u32> = vec![1, 40, 333];
    let expect = closure::ptc_answer(&g, &sources);
    let mut db = Database::build(&g, true).unwrap();
    for page in PagePolicy::ALL {
        for algo in [Algorithm::Btc, Algorithm::Jkb2, Algorithm::Spn] {
            let cfg = SystemConfig::default().page_policy(page).collecting();
            let res = db
                .run(&Query::partial(sources.clone()), algo, &cfg)
                .unwrap();
            assert_eq!(
                res.answer.as_deref().unwrap(),
                &expect[..],
                "{algo} under {}",
                page.name()
            );
        }
    }
}

#[test]
fn every_list_policy_yields_the_same_answer() {
    let g = DagGenerator::new(500, 5.0, 120).seed(10).generate();
    let expect = closure::ptc_answer(&g, &(0..500).collect::<Vec<_>>());
    let mut db = Database::build(&g, false).unwrap();
    for list in ListPolicy::ALL {
        let cfg = SystemConfig::default().list_policy(list).collecting();
        let res = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
        assert_eq!(
            res.answer.as_deref().unwrap(),
            &expect[..],
            "{}",
            list.name()
        );
    }
}

#[test]
fn buffer_sizes_change_cost_not_answers() {
    let g = DagGenerator::new(600, 4.0, 100).seed(11).generate();
    let mut db = Database::build(&g, false).unwrap();
    let mut previous: Option<Vec<(u32, u32)>> = None;
    for m in [5usize, 10, 20, 50, 200] {
        let cfg = SystemConfig::with_buffer(m).collecting();
        let res = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
        if let Some(prev) = &previous {
            assert_eq!(res.answer.as_ref().unwrap(), prev, "M={m}");
        }
        previous = res.answer;
    }
}

#[test]
fn hybrid_matches_btc_semantics_at_every_ilimit() {
    let g = DagGenerator::new(500, 6.0, 150).seed(12).generate();
    let mut db = Database::build(&g, false).unwrap();
    let cfg = SystemConfig::with_buffer(10).collecting();
    let baseline = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
    for ilimit in [0.0, 0.05, 0.1, 0.25, 0.5, 0.75] {
        let c = cfg.clone().ilimit(ilimit);
        let res = db.run(&Query::full(), Algorithm::Hyb, &c).unwrap();
        assert_eq!(res.answer, baseline.answer, "ILIMIT {ilimit}");
    }
}

#[test]
fn srch_hit_ratio_covers_its_whole_run() {
    // SRCH has no computation phase; its reported hit ratio must cover
    // the searches themselves rather than reading as zero.
    let g = DagGenerator::new(400, 4.0, 80).seed(31).generate();
    let mut db = Database::build(&g, false).unwrap();
    let res = db
        .run(
            &Query::partial(vec![1, 2, 3]),
            Algorithm::Srch,
            &SystemConfig::default(),
        )
        .unwrap();
    assert!(res.metrics.buffer_compute.read_requests > 0);
    assert!(res.metrics.compute_hit_ratio() > 0.0);
}

#[test]
fn advisor_routes_narrow_deep_selective_queries_to_jkb2() {
    // A deep narrow graph (G4's shape): height beyond SRCH's comfort
    // zone, width far below the Table 4 crossover.
    let g = DagGenerator::new(1000, 8.0, 8).seed(3).generate();
    let mut db = Database::build(&g, true).unwrap();
    let cfg = SystemConfig::default().validated();
    let sources: Vec<u32> = (0..40).map(|i| i * 7 % 1000).collect();
    let (algo, _) = db.run_advised(&Query::partial(sources), &cfg).unwrap();
    assert_eq!(algo, Algorithm::Jkb2);
}

#[test]
fn validated_mode_runs_the_oracle_check() {
    // `validate` panics internally on mismatch, so a clean pass here is
    // the assertion.
    let g = DagGenerator::new(300, 4.0, 60).seed(13).generate();
    let mut db = Database::build(&g, true).unwrap();
    let cfg = SystemConfig::default().validated();
    for algo in Algorithm::ALL {
        db.run(&Query::partial(vec![2, 9, 100]), algo, &cfg)
            .unwrap();
    }
}
