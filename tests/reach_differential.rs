//! Cross-algorithm differential harness for the reachability index.
//!
//! `REACHINDEX` answers queries from a persisted chain-decomposition
//! label structure instead of traversing the graph at query time, so
//! nothing about its implementation is shared with the eight 1994
//! algorithms — which makes agreement between them strong evidence for
//! both sides. This suite holds the index to three contracts on the
//! canonical G5 workload (n = 2000, F = 5, l = 200, seed 7, 20-page
//! buffer, sources {11, 503, 977}):
//!
//! 1. **Answer equivalence** — the index's answer tuples are
//!    bit-identical to every one of the eight algorithms', on both the
//!    simulated and the file-backed store, for partial *and* full
//!    closure.
//! 2. **Backend invariance** — metrics and FNV-1a trace digests are
//!    bit-identical between the two backends (the index's page reads
//!    flow through the same `PageStore` contract as everything else).
//! 3. **Observability** — `metrics ≡ replay(trace)` holds for index
//!    runs, and the trace actually contains the chain/label events
//!    (`chain_assigned`, `chains_built`, `labels_built`) the index
//!    emits during restructuring.

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::{closure, DagGenerator};
use tc_study::storage::Backend;
use tc_study::trace::{replay, DigestSink, Event, Tracer, VecSink};

fn canonical_graph() -> tc_study::graph::Graph {
    DagGenerator::new(2000, 5.0, 200).seed(7).generate()
}

fn canonical_query() -> Query {
    Query::partial(vec![11, 503, 977])
}

#[test]
fn index_answers_match_all_eight_algorithms_on_g5() {
    let g = canonical_graph();
    let mut db = Database::build(&g, true).expect("build database");
    let cfg = SystemConfig::with_buffer(20).collecting();
    let idx_res = db
        .run(&canonical_query(), Algorithm::ReachIndex, &cfg)
        .expect("index run");
    let idx_answer = idx_res.answer.as_deref().expect("collected answer");

    // Oracle first, then each of the paper's algorithms.
    let oracle = closure::ptc_answer(&g, &[11, 503, 977]);
    assert_eq!(idx_answer, &oracle[..], "REACHINDEX vs ptc_answer oracle");
    for algo in Algorithm::ALL {
        let res = db.run(&canonical_query(), algo, &cfg).expect("run");
        assert_eq!(
            idx_answer,
            res.answer.as_deref().expect("collected"),
            "REACHINDEX vs {algo} on canonical G5"
        );
    }
}

#[test]
fn index_full_closure_matches_btc_on_g5() {
    let g = canonical_graph();
    let mut db = Database::build(&g, false).expect("build database");
    let cfg = SystemConfig::with_buffer(20).collecting();
    let idx = db
        .run(&Query::full(), Algorithm::ReachIndex, &cfg)
        .expect("index run");
    let btc = db
        .run(&Query::full(), Algorithm::Btc, &cfg)
        .expect("btc run");
    assert_eq!(idx.answer, btc.answer, "full closure: REACHINDEX vs BTC");
    assert_eq!(idx.metrics.answer_tuples, btc.metrics.answer_tuples);
}

/// One index run on the given backend, everything comparable captured.
fn observe(backend: Backend) -> (u64, u64, tc_study::trace::ReplayedMetrics, u64, u64) {
    let g = canonical_graph();
    let base = SystemConfig::with_buffer(20).backend(backend.clone());
    let mut db = Database::build_for(&g, true, &base).expect("build database");
    let sink = Arc::new(DigestSink::new());
    let cfg = base.traced(Tracer::new(sink.clone()));
    let res = db
        .run(&canonical_query(), Algorithm::ReachIndex, &cfg)
        .expect("run");
    let d = sink.digest();
    (
        d.hash,
        d.count,
        res.metrics.to_replayed(),
        res.metrics.total_io(),
        res.metrics.answer_tuples,
    )
}

#[test]
fn index_is_bit_identical_on_sim_and_file_backends() {
    let sim = observe(Backend::Sim);
    let file = observe(Backend::file_temp());
    assert_eq!(
        (sim.0, sim.1),
        (file.0, file.1),
        "trace digest diverged between sim and file backends"
    );
    assert_eq!(
        sim.2,
        file.2,
        "cost metrics diverged; field diff:\n{}",
        sim.2.diff(&file.2).join("\n")
    );
    assert_eq!(sim.3, file.3, "total_io diverged");
    assert_eq!(sim.4, file.4, "answer_tuples diverged");
}

#[test]
fn replay_reconstructs_index_metrics_and_sees_chain_events() {
    let g = canonical_graph();
    let mut db = Database::build(&g, true).expect("build database");
    let sink = Arc::new(VecSink::unbounded());
    let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(sink.clone()));
    let res = db
        .run(&canonical_query(), Algorithm::ReachIndex, &cfg)
        .expect("run");
    assert_eq!(sink.dropped(), 0, "VecSink dropped events");
    let events = sink.events();

    // The new events must be present and self-consistent: one
    // ChainAssigned per condensation node, one ChainsBuilt, one
    // LabelsBuilt whose entry count is chains × components.
    let mut assigned = 0u64;
    let mut summary = None;
    let mut labels = None;
    for e in &events {
        match *e {
            Event::ChainAssigned { .. } => assigned += 1,
            Event::ChainsBuilt { chains, components } => summary = Some((chains, components)),
            Event::LabelsBuilt { entries, finite } => labels = Some((entries, finite)),
            _ => {}
        }
    }
    let (chains, components) = summary.expect("ChainsBuilt missing from index trace");
    let (entries, finite) = labels.expect("LabelsBuilt missing from index trace");
    assert_eq!(assigned, components, "one ChainAssigned per component");
    assert_eq!(entries, chains * components, "label matrix is k × n");
    assert!(finite <= entries, "finite labels bounded by entries");
    assert!(chains >= 1 && chains <= components);

    // And the replay oracle still balances with the new events in the
    // stream (they are observability-only; replay must not choke).
    let replayed = replay(events).expect("replay");
    assert_eq!(
        replayed,
        res.metrics.to_replayed(),
        "replay(trace) != metrics; field diff:\n{}",
        res.metrics.to_replayed().diff(&replayed).join("\n")
    );
}

#[test]
fn index_validated_mode_passes_and_agrees_on_small_grid() {
    // `validated()` makes the engine assert answers against the oracle
    // internally; a clean pass is the assertion. Cover extreme shapes:
    // a path (k = 1), an antichain (k = n), a tree, and a layered DAG.
    let graphs = vec![
        ("path", tc_study::graph::gen::path(300)),
        ("tree", tc_study::graph::gen::binary_tree(255)),
        ("layered", tc_study::graph::gen::layered(12, 12)),
        ("dense", DagGenerator::new(400, 10.0, 15).seed(3).generate()),
    ];
    for (name, g) in graphs {
        let expect = closure::ptc_answer(&g, &[0, 7, (g.n() / 2) as u32]);
        let mut db = Database::build(&g, true).expect("build");
        let cfg = SystemConfig::default().validated().collecting();
        let res = db
            .run(
                &Query::partial(vec![0, 7, (g.n() / 2) as u32]),
                Algorithm::ReachIndex,
                &cfg,
            )
            .expect("run");
        assert_eq!(
            res.answer.as_deref().expect("collected"),
            &expect[..],
            "REACHINDEX on {name}"
        );
    }
}

#[test]
fn index_handles_cyclic_inputs_through_condensation() {
    // A graph with nontrivial SCCs: the engine's cyclic path condenses
    // first, and members of a cyclic component must reach themselves.
    use tc_study::graph::Graph;
    let g = Graph::from_arcs(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)]);
    let sources: Vec<u32> = (0..6).collect();
    let expect = closure::ptc_answer(&g, &sources);
    let cyc = run_cyclic(
        &g,
        &Query::partial(sources),
        Algorithm::ReachIndex,
        &SystemConfig::default().collecting(),
    )
    .expect("cyclic run");
    assert_eq!(cyc.answer, expect);
}
