//! Golden profile test: pins the rendered `tc-profile` report of every
//! algorithm on the canonical G5 workload, and proves the profile's
//! attribution agrees with the engine's own [`CostMetrics`] bit for bit.
//!
//! Three layers measure the same run independently — the engine's
//! snapshot-delta metrics, the trace⇒metrics replay (`golden_trace.rs`),
//! and the profile fold (this test). Attribution equality here closes
//! the triangle: profile ≡ metrics ≡ replay.
//!
//! If an intentional change lands, regenerate the constants below (the
//! failure message prints the new table) and note the break in
//! CHANGES.md alongside the trace-digest break it accompanies.

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::profile::{profile_events, render, ProfileSink};
use tc_study::trace::{Tracer, VecSink};

/// FNV-1a over a rendered report's bytes (same family as the trace
/// digest).
fn digest(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Pinned digest of each algorithm's rendered profile report on the
/// canonical G5 workload, in `Algorithm::ALL` order.
const GOLDEN: [(&str, u64); 8] = [
    ("BTC", 0xFF51F277F990D1D6),
    ("HYB", 0xDCDDF60D94A181FB),
    ("BJ", 0xA871A1BAB3F53670),
    ("SRCH", 0x1F28A6B981EA8052),
    ("SPN", 0x0FA3BBAD98C4E90B),
    ("JKB", 0x249B5C26B5D1DE60),
    ("JKB2", 0x1A3D8D21AAE3402D),
    ("SEMINAIVE", 0xEB3A0092E8F0CC9D),
];

const BUFFER_PAGES: usize = 20;

fn canonical_db() -> Database {
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();
    Database::build(&g, true).unwrap()
}

fn canonical_query() -> Query {
    Query::partial(vec![11, 503, 977])
}

#[test]
fn profile_attribution_equals_cost_metrics_for_every_algorithm() {
    let mut db = canonical_db();
    let mut table = Vec::new();
    for algo in Algorithm::ALL {
        let sink = Arc::new(ProfileSink::new());
        let cfg = SystemConfig::with_buffer(BUFFER_PAGES).traced(Tracer::new(sink.clone()));
        let res = db.run(&canonical_query(), algo, &cfg).unwrap();
        let m = &res.metrics;
        let p = sink.finish();

        // ---- Page I/O attribution: profile ≡ CostMetrics, per phase…
        let (r, c) = (p.restructure_io(), p.compute_io());
        assert_eq!(
            (r.reads, r.writes),
            (m.restructure_io.reads, m.restructure_io.writes),
            "{algo}: restructure-phase attribution drifted"
        );
        assert_eq!(
            (c.reads, c.writes),
            (m.compute_io.reads, m.compute_io.writes),
            "{algo}: compute-phase attribution drifted"
        );
        // …and per file kind.
        for (k, &(reads, writes)) in m.io_by_kind.iter().enumerate() {
            let io = p.io_by_kind(k);
            assert_eq!(
                (io.reads, io.writes),
                (reads, writes),
                "{algo}: kind-{k} attribution drifted"
            );
        }

        // ---- Buffer analytics: per-kind sums ≡ pool counters.
        let b = p.buffer_totals();
        assert_eq!(b.requests, m.buffer.requests, "{algo}: requests");
        assert_eq!(b.hits, m.buffer.hits, "{algo}: hits");
        assert_eq!(b.misses, m.buffer.misses, "{algo}: misses");
        assert_eq!(b.read_requests, m.buffer.read_requests, "{algo}");
        assert_eq!(b.read_hits, m.buffer.read_hits, "{algo}: read hits");
        assert_eq!(b.evictions, m.buffer.evictions, "{algo}: evictions");
        assert_eq!(
            b.dirty_evictions, m.buffer.dirty_writebacks,
            "{algo}: dirty evictions"
        );
        assert_eq!(b.flush_writes, m.buffer.flush_writes, "{algo}: flushes");

        // ---- Miss classes partition the misses; residency respects the
        // pool bound; a fault-free run never fails a fetch.
        assert_eq!(p.miss_totals().total(), b.misses, "{algo}: partition");
        assert!(
            p.max_resident <= BUFFER_PAGES as u64,
            "{algo}: {} pages resident in a {BUFFER_PAGES}-frame pool",
            p.max_resident
        );
        assert_eq!(p.failed_requests, 0, "{algo}: failed requests");

        // ---- Logical work mirrors the misleading-metric counters.
        assert_eq!(p.logical.tuples_generated, m.tuples_generated, "{algo}");
        assert_eq!(p.logical.unions, m.unions, "{algo}: unions");
        assert_eq!(p.logical.list_fetches, m.list_fetches, "{algo}");
        assert_eq!(p.logical.tuple_reads, m.tuple_reads, "{algo}");
        assert_eq!(p.logical.tuple_writes, m.tuple_writes, "{algo}");

        table.push((algo.name(), digest(&render(&p))));
    }

    let rendered = table
        .iter()
        .map(|(name, d)| format!("    ({name:?}, {d:#018X}),"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(
        table, GOLDEN,
        "the canonical G5 profile reports changed — if intentional, \
         replace the GOLDEN table with:\n{rendered}\nand note the break \
         in CHANGES.md",
    );
}

#[test]
fn live_profile_sink_equals_offline_fold_on_golden_g5() {
    // SRCH has the smallest canonical stream; capture it once and fold
    // it offline — the live sink must have produced the same profile.
    let mut db = canonical_db();
    let vec_sink = Arc::new(VecSink::unbounded());
    let prof_sink = Arc::new(ProfileSink::new());
    let tee = Arc::new(tc_study::trace::TeeSink::new(vec![
        vec_sink.clone(),
        prof_sink.clone(),
    ]));
    let cfg = SystemConfig::with_buffer(BUFFER_PAGES).traced(Tracer::new(tee));
    db.run(&canonical_query(), Algorithm::Srch, &cfg).unwrap();
    assert_eq!(vec_sink.dropped(), 0, "VecSink lost events");
    let offline = profile_events(vec_sink.events().iter().cloned());
    let live = prof_sink.finish();
    assert_eq!(render(&live), render(&offline));
    assert_eq!(live.events, offline.events);
    assert_eq!(live.total_io(), offline.total_io());
}
