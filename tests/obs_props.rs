//! Shrink properties of the latency histogram: the algebra that makes
//! per-worker wall-clock recording safe.
//!
//! `tcq serve` and `bench_serve` merge one histogram per worker thread
//! into the process-wide figures, so the reported percentiles must not
//! depend on how replies happened to shard across workers, nor on the
//! order the per-worker histograms are folded. That holds iff merge is
//! element-wise addition on a fixed bucket layout — associative,
//! commutative, and shard-invariant — which these properties pin over
//! `tc-det`-generated random sample vectors (values spanning the full
//! log-linear range) with shrinking to a minimal counterexample.
//! Replay a failure with the printed `TC_DET_SEED=...`.

use tc_study::det::check::{shrink_vec, vec_of, Checker};
use tc_study::det::{require_eq, Rng};
use tc_study::obs::LatencyHistogram;

/// A latency sample stretched across the histogram's range: mostly
/// small values, with occasional jumps into high powers of two so the
/// log-linear buckets (not just the linear prefix) are exercised.
fn sample(rng: &mut Rng) -> u64 {
    let shift = rng.random_range(0..48u32);
    rng.random_range(0..1024u64) << shift
}

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

#[test]
fn merge_is_commutative() {
    Checker::new("merge_is_commutative").cases(64).run(
        |rng| (vec_of(rng, 0..40, sample), vec_of(rng, 0..40, sample)),
        |(a, b)| {
            let mut out: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
            for sa in shrink_vec(a) {
                out.push((sa, b.clone()));
            }
            for sb in shrink_vec(b) {
                out.push((a.clone(), sb));
            }
            out
        },
        |(a, b)| {
            let mut ab = hist_of(a);
            ab.merge(&hist_of(b));
            let mut ba = hist_of(b);
            ba.merge(&hist_of(a));
            require_eq!(ab, ba, "merge is not commutative");
            require_eq!(ab.percentile(99.0), ba.percentile(99.0), "p99 moved");
            Ok(())
        },
    );
}

#[test]
fn merge_is_associative() {
    Checker::new("merge_is_associative").cases(64).run(
        |rng| {
            (0..3)
                .map(|_| vec_of(rng, 0..30, sample))
                .collect::<Vec<_>>()
        },
        |parts| {
            let mut out = Vec::new();
            for (i, p) in parts.iter().enumerate() {
                for sp in shrink_vec(p) {
                    let mut cand = parts.clone();
                    cand[i] = sp;
                    out.push(cand);
                }
            }
            out
        },
        |parts| {
            let (a, b, c) = (hist_of(&parts[0]), hist_of(&parts[1]), hist_of(&parts[2]));
            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            require_eq!(left, right, "merge is not associative");
            Ok(())
        },
    );
}

#[test]
fn percentiles_are_invariant_under_worker_sharding() {
    // The serving property proper: shard one reply stream across
    // 1–8 "workers" round-robin by a random assignment, merge the
    // per-worker histograms in a random-looking order, and every
    // reported figure matches single-threaded recording bit for bit.
    Checker::new("percentiles_are_invariant_under_worker_sharding")
        .cases(64)
        .run(
            |rng| {
                let samples = vec_of(rng, 1..200, sample);
                let workers = rng.random_range(1..9usize);
                let assign: Vec<usize> = samples
                    .iter()
                    .map(|_| rng.random_range(0..workers))
                    .collect();
                (samples, workers, assign)
            },
            |(samples, workers, assign)| {
                shrink_vec(samples)
                    .into_iter()
                    .map(|s| {
                        let a = assign[..s.len().min(assign.len())].to_vec();
                        (s, *workers, a)
                    })
                    .collect()
            },
            |(samples, workers, assign)| {
                let whole = hist_of(samples);
                let mut shards = vec![LatencyHistogram::new(); *workers];
                for (i, &v) in samples.iter().enumerate() {
                    let w = assign.get(i).copied().unwrap_or(0) % workers;
                    shards[w].record(v);
                }
                // Fold in reverse order: merge order must not matter.
                let mut merged = LatencyHistogram::new();
                for shard in shards.iter().rev() {
                    merged.merge(shard);
                }
                require_eq!(merged, whole, "sharded merge != direct recording");
                for q in [50.0, 95.0, 99.0, 99.9] {
                    require_eq!(
                        merged.percentile(q),
                        whole.percentile(q),
                        "p{q} moved under sharding across {workers} workers"
                    );
                }
                require_eq!(merged.mean(), whole.mean(), "mean moved under sharding");
                require_eq!(
                    merged.max_observed(),
                    whole.max_observed(),
                    "max moved under sharding"
                );
                Ok(())
            },
        );
}
