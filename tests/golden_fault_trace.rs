//! Golden fault-trace test: replay-determinism guard for fault injection.
//!
//! Companion to `golden_seed.rs`: where that test pins the canonical G5
//! workload, this one pins the *failure trace* a fixed fault seed
//! produces on it. The fault-injection layer's whole value is that a
//! failure can be replayed bit-for-bit from its seed; any change to the
//! decision stream (draw order, op counting, retry behaviour) breaks
//! replayability of previously recorded traces and must be made
//! deliberately.
//!
//! If an intentional change lands, regenerate the constants below (the
//! failure message prints the new values) and note the break in
//! CHANGES.md: previously recorded fault seeds stop replaying.

use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::storage::FaultEvent;

/// FNV-1a over the (op, page, kind, outcome) event sequence.
fn trace_checksum(events: &[FaultEvent]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut byte = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for e in events {
        for b in e.op.to_le_bytes() {
            byte(b);
        }
        for b in e.page.0.to_le_bytes() {
            byte(b);
        }
        byte(e.kind.code());
        byte(e.outcome.code());
    }
    h
}

const FAULT_SEED: u64 = 0xDA12_1994;
const GOLDEN_EVENTS: usize = 361;
const GOLDEN_TRACE_CHECKSUM: u64 = 0x2B36_967E_0A32_08CA;
const GOLDEN_RETRIES: u64 = 361;
const GOLDEN_TOTAL_IO: u64 = 17624;

fn faulted_g5_run() -> RunResult {
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();
    let mut db = Database::build(&g, true).unwrap();
    let cfg = SystemConfig::with_buffer(20).faulted(
        FaultConfig::new(FAULT_SEED)
            .transient_reads(0.02)
            .transient_writes(0.02),
    );
    db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap()
}

#[test]
fn pinned_fault_seed_yields_pinned_trace_on_g5() {
    let res = faulted_g5_run();
    assert_eq!(
        (
            res.fault_trace.len(),
            trace_checksum(&res.fault_trace),
            res.metrics.io_retries,
            res.metrics.total_io(),
        ),
        (
            GOLDEN_EVENTS,
            GOLDEN_TRACE_CHECKSUM,
            GOLDEN_RETRIES,
            GOLDEN_TOTAL_IO,
        ),
        "the pinned fault trace changed: events {} checksum {:#018X} \
         retries {} total_io {} — if intentional, update the golden \
         constants and note the replay break in CHANGES.md",
        res.fault_trace.len(),
        trace_checksum(&res.fault_trace),
        res.metrics.io_retries,
        res.metrics.total_io(),
    );
}

#[test]
fn transient_faults_leave_g5_page_io_at_the_fault_free_golden_value() {
    // The golden total above must be exactly the fault-free number:
    // failed attempts are not counted as physical transfers.
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();
    let mut db = Database::build(&g, true).unwrap();
    let res = db
        .run(
            &Query::full(),
            Algorithm::Btc,
            &SystemConfig::with_buffer(20),
        )
        .unwrap();
    assert_eq!(res.metrics.total_io(), GOLDEN_TOTAL_IO);
    assert_eq!(res.metrics.io_retries, 0);
}

#[test]
fn two_consecutive_faulted_runs_agree_bit_for_bit() {
    let (a, b) = (faulted_g5_run(), faulted_g5_run());
    assert_eq!(a.fault_trace, b.fault_trace);
    assert_eq!(a.metrics.total_io(), b.metrics.total_io());
    assert_eq!(a.metrics.io_retries, b.metrics.io_retries);
    assert_eq!(a.metrics.retry_backoff_ms, b.metrics.retry_backoff_ms);
    assert_eq!(a.metrics.faults_injected, b.metrics.faults_injected);
    assert_eq!(a.metrics.tuples_generated, b.metrics.tuples_generated);
}
