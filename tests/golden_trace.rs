//! Golden trace-digest test: the observability layer's determinism guard.
//!
//! Companion to `golden_seed.rs` (which pins the canonical G5 workload)
//! and `golden_fault_trace.rs` (which pins its failure trace): this test
//! pins the FNV-1a digest of the *event trace* each of the nine
//! algorithms emits on the canonical G5 workload (n = 2000, F = 5,
//! l = 200, seed 7, 20-page buffer, sources {11, 503, 977}). The digest
//! covers every event's discriminant and fields in canonical encoding,
//! so any change to instrumentation points, event ordering, or the
//! algorithms themselves shows up as a digest break.
//!
//! If an intentional change lands, regenerate the constants below (the
//! failure message prints the new table) and note the break in
//! CHANGES.md: previously exported traces stop matching.

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::trace::{digest_events, replay, DigestSink, Tracer};

/// Pinned (algorithm, digest hash, event count) per algorithm, in
/// `Algorithm::WITH_INDEX` order. The first eight entries are the
/// original 1994 suite and must never move; REACHINDEX is appended.
const GOLDEN: [(&str, u64, u64); 9] = [
    ("BTC", 0x1D96D869883DDEE3, 11529396),
    ("HYB", 0xB2B3F7FA19E7CCF6, 12337053),
    ("BJ", 0x81FF14F2FAADD69C, 10416976),
    ("SRCH", 0xED0E8FCCAA326D6B, 125155),
    ("SPN", 0xFAB19F9F93A86F79, 9977385),
    ("JKB", 0x935C3DC4CFB2FF54, 146559),
    ("JKB2", 0xEE79C2D5908A19EA, 178094),
    ("SEMINAIVE", 0xDA3EAA95B440D129, 155492),
    ("REACHINDEX", 0xC0E6BB75A2724E06, 777327),
];

fn canonical_db() -> Database {
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();
    Database::build(&g, true).unwrap()
}

fn canonical_query() -> Query {
    Query::partial(vec![11, 503, 977])
}

#[test]
fn every_algorithm_trace_matches_its_golden_digest() {
    let mut db = canonical_db();
    let mut table = Vec::new();
    for algo in Algorithm::WITH_INDEX {
        let sink = Arc::new(DigestSink::new());
        let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(sink.clone()));
        db.run(&canonical_query(), algo, &cfg).unwrap();
        let d = sink.digest();
        table.push((algo.name(), d.hash, d.count));
    }
    let rendered = table
        .iter()
        .map(|(name, hash, count)| format!("    ({name:?}, {hash:#018X}, {count}),"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(
        table, GOLDEN,
        "the canonical G5 event traces changed — if intentional, replace \
         the GOLDEN table with:\n{rendered}\nand note the trace break in \
         CHANGES.md",
    );
}

#[test]
fn replay_reconstructs_metrics_for_every_algorithm_on_golden_g5() {
    // The acceptance bar for the observability layer: on the canonical
    // workload, folding the event stream re-derives the engine's full
    // cost-metric suite field-by-field, for all nine algorithms. The
    // two sides come from independent code paths (snapshot-delta
    // accounting vs. a pure fold), so a lost or double-counted unit of
    // work on either side fails here.
    let mut db = canonical_db();
    for algo in Algorithm::WITH_INDEX {
        let sink = Arc::new(tc_study::trace::VecSink::unbounded());
        let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(sink.clone()));
        let res = db.run(&canonical_query(), algo, &cfg).unwrap();
        let events = sink.events();
        // The streaming digest and the offline digest agree on the
        // captured stream (VecSink lost nothing).
        assert_eq!(sink.dropped(), 0, "{algo}: VecSink dropped events");
        let replayed = replay(events.iter().cloned()).unwrap();
        let expected = res.metrics.to_replayed();
        assert_eq!(
            replayed,
            expected,
            "{algo}: replay(trace) != metrics; field diff:\n{}",
            expected.diff(&replayed).join("\n")
        );
        // Sanity: the digest of the captured events is the digest a
        // streaming sink would have produced (same canonical encoding).
        let d = digest_events(events.iter());
        assert_eq!(d.count, events.len() as u64);
    }
}
