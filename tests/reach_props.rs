//! Shrinking property suite for the chain-decomposition index.
//!
//! Random DAGs × page-replacement policies × optional transient-fault
//! plans, on the `tc-det` harness (a failure reprints its
//! `TC_DET_SEED=...` and shrinks to a minimal case first). Three layers
//! of invariants:
//!
//! 1. **Decomposition** — the chains partition the condensation's
//!    nodes, every chain is a path of the condensation (consecutive
//!    elements are arcs), and the chain count k never exceeds the node
//!    count (path ⇒ k = 1; antichain ⇒ k = n).
//! 2. **Labels** — sound *and* complete against the `dfs_closure`
//!    reachability oracle: `reach_mem(u, v)` iff `v ∈ closure(u)`, for
//!    all pairs.
//! 3. **Engine** — a full `REACHINDEX` run under an arbitrary policy
//!    (and optionally a fault plan) still produces exactly the
//!    `ptc_answer` oracle's tuples, and `metrics ≡ replay(trace)`.

use std::sync::Arc;
use tc_study::buffer::PagePolicy;
use tc_study::core::prelude::*;
use tc_study::det::check::{self, Checker};
use tc_study::det::{require, require_eq, Rng};
use tc_study::graph::scc::condensation;
use tc_study::graph::{closure, Graph};
use tc_study::reach::{ChainDecomposition, NullMeter, ReachIndex};
use tc_study::trace::{replay, Tracer, VecSink};

/// Raw generated input: node count plus unconstrained arc pairs (kept
/// raw so shrinking can drop arcs directly), a source set, a policy
/// index, and an optional fault seed.
type RawCase = ((usize, Vec<(u32, u32)>), Vec<u32>, usize, Option<u64>);

/// Orients the raw pairs upward so the graph is a DAG.
fn dag_of(&(n, ref pairs): &(usize, Vec<(u32, u32)>)) -> Graph {
    Graph::from_arcs(
        n,
        pairs.iter().filter_map(|&(a, b)| {
            use std::cmp::Ordering::*;
            match a.cmp(&b) {
                Less => Some((a, b)),
                Greater => Some((b, a)),
                Equal => None,
            }
        }),
    )
}

/// Keeps the raw pairs as-is (self-loops dropped) — may be cyclic,
/// which is exactly what the condensation layer is for.
fn any_graph_of(&(n, ref pairs): &(usize, Vec<(u32, u32)>)) -> Graph {
    Graph::from_arcs(
        n,
        pairs.iter().filter(|&&(a, b)| a != b).map(|&(a, b)| (a, b)),
    )
}

fn generate(rng: &mut Rng) -> RawCase {
    let n = rng.random_range(2..40usize);
    let pairs = check::vec_of(rng, 0..120, |r| {
        (r.random_range(0..n as u32), r.random_range(0..n as u32))
    });
    let sources = check::vec_of(rng, 1..4, |r| r.random_range(0..n as u32));
    let policy = rng.random_range(0..PagePolicy::ALL.len());
    let fault = rng
        .random_range(0..3u32)
        .eq(&0)
        .then(|| rng.random_range(0..1_000_000));
    ((n, pairs), sources, policy, fault)
}

fn shrink(case: &RawCase) -> Vec<RawCase> {
    let ((n, pairs), sources, policy, fault) = case;
    let mut out: Vec<RawCase> = check::shrink_vec(pairs)
        .into_iter()
        .map(|p| ((*n, p), sources.clone(), *policy, *fault))
        .collect();
    if fault.is_some() {
        out.push(((*n, pairs.clone()), sources.clone(), *policy, None));
    }
    out
}

#[test]
fn chains_partition_the_condensation_into_paths() {
    Checker::new("chains_partition_the_condensation_into_paths")
        .cases(64)
        .run(generate, shrink, |case| {
            let (raw, _, _, _) = case;
            // Possibly-cyclic input: the decomposition target is the
            // condensation, as in the index builder.
            let g = any_graph_of(raw);
            let cond = condensation(&g);
            let dag = &cond.graph;
            let cd = ChainDecomposition::of(dag, &Tracer::disabled(), &mut NullMeter);

            require_eq!(cd.node_count(), dag.n(), "chains must cover every node");
            require!(
                cd.width() >= usize::from(dag.n() > 0) && cd.width() <= dag.n(),
                "k = {} out of range for n = {}",
                cd.width(),
                dag.n()
            );
            let mut seen = vec![false; dag.n()];
            for (c, chain) in cd.chains.iter().enumerate() {
                require!(!chain.is_empty(), "chain {c} is empty");
                for w in chain.windows(2) {
                    require!(
                        dag.has_arc(w[0], w[1]),
                        "chain {c}: ({}, {}) is not a condensation arc",
                        w[0],
                        w[1]
                    );
                }
                for (i, &v) in chain.iter().enumerate() {
                    require!(!seen[v as usize], "node {v} appears on two chains");
                    seen[v as usize] = true;
                    require_eq!(cd.chain_of[v as usize], c as u32, "chain_of[{v}]");
                    require_eq!(cd.pos_of[v as usize], i as u32, "pos_of[{v}]");
                }
            }
            require!(seen.iter().all(|&b| b), "some node is on no chain");
            Ok(())
        });
}

#[test]
fn labels_are_sound_and_complete_against_the_oracle() {
    Checker::new("labels_are_sound_and_complete")
        .cases(64)
        .run(generate, shrink, |case| {
            let (raw, _, _, _) = case;
            let g = dag_of(raw);
            let mut disk = tc_study::storage::DiskSim::new();
            let idx = ReachIndex::build(&mut disk, &g, &Tracer::disabled(), &mut NullMeter)
                .map_err(|e| format!("build failed: {e}"))?;
            let tc = closure::dfs_closure(&g);
            for u in 0..g.n() as u32 {
                for v in 0..g.n() as u32 {
                    require_eq!(
                        idx.reach_mem(u, v),
                        tc.get(u, v),
                        "reach({u}, {v}) disagrees with dfs_closure"
                    );
                }
            }
            Ok(())
        });
}

#[test]
fn engine_runs_match_the_oracle_under_policies_and_faults() {
    Checker::new("reach_engine_matches_oracle")
        .cases(24)
        .run(generate, shrink, |case| {
            let (raw, sources, policy, fault) = case;
            let g = dag_of(raw);
            let sources: Vec<u32> = sources.clone();
            let expect = closure::ptc_answer(&g, &sources);
            let mut db = Database::build(&g, true).map_err(|e| format!("build: {e}"))?;
            let sink = Arc::new(VecSink::unbounded());
            let mut cfg = SystemConfig::with_buffer(8)
                .collecting()
                .traced(Tracer::new(sink.clone()));
            cfg.page_policy = PagePolicy::ALL[*policy];
            if let Some(seed) = fault {
                cfg.fault = Some(
                    FaultConfig::new(*seed)
                        .transient_reads(0.05)
                        .transient_writes(0.05),
                );
            }
            // A fault plan may exhaust the retry budget; an erroring run
            // produces no answer, so there is nothing to check.
            let Ok(res) = db.run(&Query::partial(sources), Algorithm::ReachIndex, &cfg) else {
                return Ok(());
            };
            require_eq!(
                res.answer.as_deref().unwrap_or(&[]),
                &expect[..],
                "answer != ptc_answer under {} (fault: {:?})",
                PagePolicy::ALL[*policy].name(),
                fault
            );
            require_eq!(sink.dropped(), 0, "VecSink dropped events");
            let replayed = replay(sink.events()).map_err(|e| format!("replay failed: {e:?}"))?;
            let expected = res.metrics.to_replayed();
            require!(
                replayed == expected,
                "replay(trace) != metrics; field diff:\n{}",
                expected.diff(&replayed).join("\n")
            );
            Ok(())
        });
}
