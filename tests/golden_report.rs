//! Golden report digests: end-to-end pin of every experiment section.
//!
//! `golden_seed.rs` pins the workload generator; this test pins the
//! other end of the pipeline — the full report fragment each section
//! renders on the quick grid (`ExpOpts::quick()`, 1 instance × 1 source
//! set). Any change to an algorithm, the storage substrate, the buffer
//! policies, the averaging, or the report formatting shows up here as a
//! digest mismatch naming the section.
//!
//! If an intentional change lands, regenerate the constants below (the
//! failure message prints the new values) and note the break in
//! CHANGES.md: previously recorded experiment numbers for that section
//! become incomparable.

use tc_bench::experiments::section;
use tc_bench::ExpOpts;

/// FNV-1a over a report fragment's bytes (same family as
/// `golden_seed.rs`'s arc checksum).
fn digest(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Golden quick-grid digests, one per registered section, in canonical
/// section order.
const GOLDEN: [(&str, u64); 14] = [
    ("table2", 0xFF6B_4C4A_52F0_F50B),
    ("table3", 0xA9E9_188F_935F_0B68),
    ("fig6", 0xBE30_F49A_8623_A929),
    ("fig7", 0x474F_CD9A_B824_276E),
    ("figs8-12", 0x04EF_0112_49D4_BAB9),
    ("table4", 0xE3CC_983C_8866_E4DE),
    ("predictiveness", 0xB27F_ED9B_07A2_8CEF),
    ("fig13", 0x9ECE_DEB3_67B8_AFD5),
    ("fig14", 0xDF06_D3BF_DC84_5410),
    ("related", 0x65AF_1E01_873F_7F46),
    ("ablations", 0x95ED_6DF1_481D_B021),
    ("advisor", 0x9013_8046_901C_6AC6),
    ("updates", 0x9CF8_F6B0_C48C_160D),
    ("reachindex", 0xE4E3_365E_1283_4ACA),
];

#[test]
fn quick_grid_sections_match_golden_digests() {
    let opts = ExpOpts::quick();
    let mut mismatches = Vec::new();
    for (name, golden) in GOLDEN {
        let f = section(name).unwrap_or_else(|| panic!("unknown golden section {name}"));
        let fragment = f(&opts).unwrap_or_else(|e| panic!("{name} failed on the quick grid: {e}"));
        let d = digest(&fragment);
        if d != golden {
            mismatches.push(format!("    (\"{name}\", {d:#018X}),"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "quick-grid report fragments changed — if intentional, update GOLDEN \
         to the values below and note the break in CHANGES.md:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn quick_grid_sections_match_golden_digests_with_timing_armed() {
    // The determinism-under-timing gate for the whole 14-section report:
    // running every section with `--timing` (per-cell wall-clock span
    // trees) must reproduce the exact same golden digests — the span
    // layer rides beside the report, never inside it. Sharing the GOLDEN
    // table with the plain test above keeps one source of truth.
    let tmp = tc_study::storage::TempDir::new("tc-golden-timing").expect("temp dir");
    let opts = ExpOpts::quick().timing_dir(tmp.path());
    let mut mismatches = Vec::new();
    for (name, golden) in GOLDEN {
        let f = section(name).unwrap_or_else(|| panic!("unknown golden section {name}"));
        let fragment = f(&opts).unwrap_or_else(|e| panic!("{name} failed with --timing: {e}"));
        if digest(&fragment) != golden {
            mismatches.push(name);
        }
    }
    assert!(
        mismatches.is_empty(),
        "--timing changed the report bytes of: {} — wall-clock data leaked \
         into the deterministic track",
        mismatches.join(", ")
    );
    // And the sidecar span trees materialized beside the reports.
    let spans = std::fs::read_dir(tmp.path())
        .expect("read timing dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .count();
    assert!(spans > 0, "--timing wrote no span trees");
}

#[test]
fn golden_table_covers_every_registered_section() {
    let registered: Vec<&str> = tc_bench::experiments::SECTIONS
        .iter()
        .map(|&(name, _)| name)
        .collect();
    let pinned: Vec<&str> = GOLDEN.iter().map(|&(name, _)| name).collect();
    assert_eq!(
        registered, pinned,
        "section registry and golden table diverged — pin new sections here"
    );
}
