//! Differential serial ≡ parallel test for the experiment scheduler.
//!
//! The scheduler's contract (DESIGN.md §"Deterministic parallel
//! scheduling") is that `--jobs` is purely a throughput knob: every
//! report fragment is byte-identical at any worker count, because cells
//! are pure functions of their coordinates and results are reassembled
//! in canonical cell order. This test runs every registered section on
//! the quick grid at `jobs = 1` (inline serial path) and `jobs = 4`
//! (work-queue path, oversubscribed on small hosts so workers genuinely
//! interleave) and compares FNV-1a digests of the fragments — the same
//! digest family `golden_seed.rs` uses for workload pinning.

use tc_bench::experiments::SECTIONS;
use tc_bench::ExpOpts;

/// FNV-1a over a report fragment's bytes.
fn digest(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn every_section_is_byte_identical_serial_vs_parallel() {
    let serial = ExpOpts::quick().jobs(1);
    let parallel = ExpOpts::quick().jobs(4);
    let mut diverged = Vec::new();
    for (name, f) in SECTIONS {
        let a = f(&serial).unwrap_or_else(|e| panic!("{name} failed at jobs=1: {e}"));
        let b = f(&parallel).unwrap_or_else(|e| panic!("{name} failed at jobs=4: {e}"));
        if a != b {
            diverged.push(format!(
                "{name}: jobs=1 digest {:#018X} != jobs=4 digest {:#018X}",
                digest(&a),
                digest(&b)
            ));
        }
    }
    assert!(
        diverged.is_empty(),
        "sections diverged between serial and parallel execution — a cell is \
         reading shared state (wall clock, shared RNG, scheduling order?):\n{}",
        diverged.join("\n")
    );
}
