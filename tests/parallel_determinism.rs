//! Differential serial ≡ parallel test for the experiment scheduler.
//!
//! The scheduler's contract (DESIGN.md §"Deterministic parallel
//! scheduling") is that `--jobs` is purely a throughput knob: every
//! report fragment is byte-identical at any worker count, because cells
//! are pure functions of their coordinates and results are reassembled
//! in canonical cell order. This test runs every registered section on
//! the quick grid at `jobs = 1` (inline serial path) and `jobs = 4`
//! (work-queue path, oversubscribed on small hosts so workers genuinely
//! interleave) and compares FNV-1a digests of the fragments — the same
//! digest family `golden_seed.rs` uses for workload pinning.

use tc_bench::corpus::family;
use tc_bench::experiments::{run_cells_traced, Cell, CellTask, QuerySpec, SECTIONS};
use tc_bench::ExpOpts;
use tc_study::core::prelude::*;

/// FNV-1a over a report fragment's bytes.
fn digest(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn every_section_is_byte_identical_serial_vs_parallel() {
    let serial = ExpOpts::quick().jobs(1);
    let parallel = ExpOpts::quick().jobs(4);
    let mut diverged = Vec::new();
    for (name, f) in SECTIONS {
        let a = f(&serial).unwrap_or_else(|e| panic!("{name} failed at jobs=1: {e}"));
        let b = f(&parallel).unwrap_or_else(|e| panic!("{name} failed at jobs=4: {e}"));
        if a != b {
            diverged.push(format!(
                "{name}: jobs=1 digest {:#018X} != jobs=4 digest {:#018X}",
                digest(&a),
                digest(&b)
            ));
        }
    }
    assert!(
        diverged.is_empty(),
        "sections diverged between serial and parallel execution — a cell is \
         reading shared state (wall clock, shared RNG, scheduling order?):\n{}",
        diverged.join("\n")
    );
}

#[test]
fn per_cell_traces_are_byte_identical_serial_vs_parallel() {
    // The same contract, one layer deeper: with `--trace` the scheduler
    // writes one JSONL event stream per cell, each through its own sink,
    // so every trace file must be byte-identical at any worker count —
    // worker interleaving must never blend two cells' streams.
    let cells: Vec<Cell> = [Algorithm::Btc, Algorithm::Srch, Algorithm::Seminaive]
        .into_iter()
        .flat_map(|algorithm| {
            (0..2).map(move |set| Cell {
                fam: family("G3"),
                instance: 0,
                set,
                task: CellTask::Query {
                    algorithm,
                    query: QuerySpec::Ptc(2),
                    cfg: SystemConfig::default(),
                },
            })
        })
        .collect();
    let root = std::env::temp_dir().join(format!("tc-trace-det-{}", std::process::id()));
    let dir1 = root.join("jobs1");
    let dir4 = root.join("jobs4");
    run_cells_traced(&cells, 1, &dir1).expect("jobs=1 traced sweep");
    run_cells_traced(&cells, 4, &dir4).expect("jobs=4 traced sweep");

    let mut diverged = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let name = cell.trace_file_name(i);
        let a = std::fs::read(dir1.join(&name)).unwrap_or_else(|e| panic!("{name} at jobs=1: {e}"));
        let b = std::fs::read(dir4.join(&name)).unwrap_or_else(|e| panic!("{name} at jobs=4: {e}"));
        assert!(!a.is_empty(), "{name}: empty trace at jobs=1");
        if a != b {
            diverged.push(format!(
                "{name}: jobs=1 digest {:#018X} ({} bytes) != jobs=4 digest {:#018X} ({} bytes)",
                digest(&String::from_utf8_lossy(&a)),
                a.len(),
                digest(&String::from_utf8_lossy(&b)),
                b.len(),
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&root);
    assert!(
        diverged.is_empty(),
        "per-cell traces diverged between serial and parallel execution — \
         a sink is shared across cells or a cell reads shared state:\n{}",
        diverged.join("\n")
    );
}
