//! Property-based tests for the experiment cell scheduler, on the
//! in-workspace `tc-det` harness (seeded cases, greedy shrinking —
//! replay a failure with the printed `TC_DET_SEED=...`).
//!
//! The property: for *any* subset of cells, *any* worker count and *any*
//! per-cell latency jitter, `run_cells_jittered` returns exactly what
//! the serial inline path returns, position by position. Jitter shakes
//! the worker interleavings, so a pass means the reassembly really is
//! scheduling-independent, not just lucky.

use std::sync::OnceLock;
use tc_study::det::check::{self, Checker};
use tc_study::det::{require_eq, Rng};

use tc_bench::corpus::family;
use tc_bench::experiments::{run_cells_jittered, Cell, CellOutput, CellTask, ExpError, QuerySpec};
use tc_study::core::prelude::*;

// Compile-time audit: everything that crosses the scheduler's
// thread-scope boundary must be Send (and the shared inputs Sync).
const _: fn() = || {
    fn sendable<T: Send>() {}
    fn shareable<T: Sync>() {}
    sendable::<Cell>();
    shareable::<Cell>();
    sendable::<CellOutput>();
    sendable::<ExpError>();
    sendable::<tc_bench::ExpOpts>();
};

/// A small, cheap, heterogeneous cell pool: sparse families only
/// (f = 2), high-selectivity queries, one Stats and one Shape probe.
fn pool() -> &'static Vec<Cell> {
    static POOL: OnceLock<Vec<Cell>> = OnceLock::new();
    POOL.get_or_init(|| {
        let cfg = SystemConfig::with_buffer(10);
        let mut cells = vec![
            Cell {
                fam: family("G1"),
                instance: 0,
                set: 0,
                task: CellTask::Stats,
            },
            Cell {
                fam: family("G2"),
                instance: 0,
                set: 0,
                task: CellTask::Shape,
            },
        ];
        for (fam, algorithm, query, instance, set) in [
            ("G1", Algorithm::Btc, QuerySpec::Ptc(2), 0, 0),
            ("G1", Algorithm::Btc, QuerySpec::Ptc(2), 0, 1),
            ("G1", Algorithm::Jkb2, QuerySpec::Ptc(2), 0, 0),
            ("G1", Algorithm::Btc, QuerySpec::Full, 0, 0),
            ("G2", Algorithm::Btc, QuerySpec::Ptc(2), 0, 0),
            ("G2", Algorithm::Jkb2, QuerySpec::Ptc(3), 1, 0),
            ("G2", Algorithm::Srch, QuerySpec::Ptc(2), 0, 0),
            ("G3", Algorithm::Btc, QuerySpec::Ptc(2), 0, 0),
            ("G3", Algorithm::Bj, QuerySpec::Ptc(2), 1, 1),
        ] {
            cells.push(Cell {
                fam: family(fam),
                instance,
                set,
                task: CellTask::Query {
                    algorithm,
                    query,
                    cfg: cfg.clone(),
                },
            });
        }
        cells
    })
}

/// A cell output's canonical form: the full Debug rendering minus the
/// one field outside the determinism contract — `elapsed` is host
/// wall-clock (and is never rendered into a report fragment; the tables
/// print `estimated_cpu_seconds` instead, see `CostMetrics::cpu_ops`).
fn canon(o: &CellOutput) -> String {
    let s = format!("{o:?}");
    match s.find("elapsed: ") {
        Some(start) => {
            let end = s[start..]
                .find(", ")
                .map(|i| start + i + 2)
                .unwrap_or(s.len());
            format!("{}{}", &s[..start], &s[end..])
        }
        None => s,
    }
}

/// Serial (jobs = 1, no jitter) outputs for the whole pool, in canonical
/// form — the byte-level baseline every scheduled run must reproduce.
fn baseline() -> &'static Vec<String> {
    static BASELINE: OnceLock<Vec<String>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        run_cells_jittered(pool(), 1, &[])
            .unwrap_or_else(|e| panic!("serial baseline failed: {e}"))
            .iter()
            .map(canon)
            .collect()
    })
}

/// One generated schedule: which pool cells (with repetition allowed),
/// how many workers, what per-cell latency jitter.
type Schedule = (Vec<usize>, usize, Vec<u64>);

fn random_schedule(rng: &mut Rng) -> Schedule {
    let n = pool().len();
    let picks = check::vec_of(rng, 1..(n + 4), |r| r.random_range(0..n));
    let jobs = rng.random_range(1..9usize);
    let jitter = check::vec_of(rng, 0..6, |r| r.random_range(0..400u64));
    (picks, jobs, jitter)
}

fn shrink_schedule((picks, jobs, jitter): &Schedule) -> Vec<Schedule> {
    let mut out: Vec<Schedule> = check::shrink_vec(picks)
        .into_iter()
        .filter(|p| !p.is_empty())
        .map(|p| (p, *jobs, jitter.clone()))
        .collect();
    if !jitter.is_empty() {
        out.push((picks.clone(), *jobs, Vec::new()));
    }
    if *jobs > 1 {
        out.push((picks.clone(), jobs - 1, jitter.clone()));
    }
    out
}

/// Scheduled output ≡ serial output, for any subset × jobs × jitter.
#[test]
fn any_schedule_reproduces_the_serial_outputs() {
    let _ = baseline(); // build outside the measured cases
    Checker::new("any_schedule_reproduces_the_serial_outputs")
        .cases(10)
        .run(random_schedule, shrink_schedule, |(picks, jobs, jitter)| {
            let cells: Vec<Cell> = picks.iter().map(|&i| pool()[i].clone()).collect();
            let out = run_cells_jittered(&cells, *jobs, jitter)
                .map_err(|e| format!("schedule failed: {e}"))?;
            require_eq!(out.len(), cells.len());
            // Position-by-position equality against the serial baseline
            // (covers both values and canonical ordering), plus an
            // aggregate CostMetrics fold like the report tables do.
            let mut ops = 0u64;
            for (slot, (&i, o)) in picks.iter().zip(&out).enumerate() {
                require_eq!(canon(o), baseline()[i].clone(), "slot {slot}");
                if let CellOutput::Metrics(m) = o {
                    ops = ops.wrapping_add(m.cpu_ops());
                }
            }
            let mut expected_ops = 0u64;
            for &i in picks {
                if let CellOutput::Metrics(m) =
                    &run_cells_jittered(&pool()[i..i + 1], 1, &[]).map_err(|e| e.to_string())?[0]
                {
                    expected_ops = expected_ops.wrapping_add(m.cpu_ops());
                }
            }
            require_eq!(ops, expected_ops);
            Ok(())
        });
}

/// A failing cell surfaces as a typed `ExpError::Cell` with its
/// coordinates, at any worker count — never a worker panic, and never a
/// silent success.
#[test]
fn failures_surface_as_typed_errors_at_any_job_count() {
    // Arm the fault-injection substrate so every read attempt kills its
    // page: the run *must* fail, deterministically, with a typed
    // StorageError the scheduler wraps into a coordinate-bearing
    // ExpError::Cell.
    let mut cfg = SystemConfig::with_buffer(10);
    cfg.fault = Some(tc_study::storage::FaultConfig::new(41).permanent_reads(1.0));
    let bad = Cell {
        fam: family("G1"),
        instance: 0,
        set: 1,
        task: CellTask::Query {
            algorithm: Algorithm::Btc,
            query: QuerySpec::Ptc(2),
            cfg,
        },
    };
    let mut cells = vec![bad];
    cells.extend(pool().iter().cloned());
    for jobs in [1usize, 2, 5] {
        match run_cells_jittered(&cells, jobs, &[]) {
            Err(ExpError::Cell {
                fam,
                instance,
                set,
                algorithm,
                ..
            }) => {
                // Only one cell can fail, so scheduling freedom over
                // which error is reported still pins the coordinates.
                assert_eq!(
                    (fam, instance, set, algorithm),
                    ("G1", 0, 1, Some(Algorithm::Btc)),
                    "jobs={jobs}: wrong cell reported"
                );
            }
            Err(e) => panic!("jobs={jobs}: expected a Cell error, got: {e}"),
            Ok(_) => panic!("jobs={jobs}: faulted run reported success"),
        }
    }
}
