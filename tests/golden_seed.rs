//! Golden seed-stability test: cross-platform determinism guard.
//!
//! The study's methodology depends on bit-reproducible workloads: the
//! same seed must yield the same DAG (and therefore the same page-I/O
//! numbers) on every platform and in every future revision that does not
//! *intend* to change the generator. This test pins the paper's
//! canonical workload — the G5 family instance used in the README and
//! quickstart (n = 2000, F = 5, l = 200, seed 7) — to a golden FNV-1a
//! checksum of its arc list.
//!
//! If an intentional generator change lands, regenerate the constants
//! below (the failure message prints the new values) and note the break
//! in CHANGES.md: all previously recorded experiment numbers become
//! incomparable.

use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;

/// FNV-1a over the arc list, arcs in the graph's canonical order.
fn arc_checksum(g: &tc_study::graph::Graph) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut byte = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (u, v) in g.arcs() {
        for b in u.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            byte(b);
        }
    }
    h
}

const GOLDEN_ARC_COUNT: usize = 9757;
const GOLDEN_CHECKSUM: u64 = 0xFA1F_67FE_29E6_93FB;

fn canonical_workload() -> tc_study::graph::Graph {
    DagGenerator::new(2000, 5.0, 200).seed(7).generate()
}

/// A config honouring `TC_BACKEND` (CI's backend-matrix job runs this
/// suite with `TC_BACKEND=file` and expects identical numbers, since
/// the metrics are backend-invariant by design).
fn backend_cfg(buffer: usize) -> SystemConfig {
    let mut cfg = SystemConfig::with_buffer(buffer);
    if let Ok(v) = std::env::var("TC_BACKEND") {
        cfg.backend = Backend::parse(&v).expect("TC_BACKEND must be sim, file or file:DIR");
    }
    cfg
}

#[test]
fn canonical_workload_matches_golden_checksum() {
    let g = canonical_workload();
    assert_eq!(
        (g.arc_count(), arc_checksum(&g)),
        (GOLDEN_ARC_COUNT, GOLDEN_CHECKSUM),
        "the canonical G5 workload (n=2000, F=5, l=200, seed 7) changed: \
         arc_count {} checksum {:#018X} — if intentional, update the golden \
         constants and note the workload break in CHANGES.md",
        g.arc_count(),
        arc_checksum(&g),
    );
}

#[test]
fn same_seed_same_workload_and_metrics() {
    // Two *independent* generate + load + run pipelines must agree bit
    // for bit on the workload and on every page-I/O metric.
    let run = || {
        let g = canonical_workload();
        let checksum = arc_checksum(&g);
        let cfg = backend_cfg(20);
        let mut db = Database::build_for(&g, true, &cfg).unwrap();
        let full = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
        let ptc = db
            .run(&Query::partial(vec![11, 503, 977]), Algorithm::Jkb2, &cfg)
            .unwrap();
        (
            checksum,
            full.metrics.total_io(),
            full.metrics.tuples_generated,
            ptc.metrics.total_io(),
            ptc.metrics.answer_tuples,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed produced diverging workload or metrics");
}

#[test]
fn random_policy_is_reproducible() {
    // The RANDOM replacement policy draws from tc-det's seeded stream;
    // its simulated I/O must also be run-to-run stable.
    let io = || {
        let g = canonical_workload();
        let mut cfg = backend_cfg(20);
        cfg.page_policy = tc_study::buffer::PagePolicy::Random;
        let mut db = Database::build_for(&g, false, &cfg).unwrap();
        db.run(&Query::full(), Algorithm::Btc, &cfg)
            .unwrap()
            .metrics
            .total_io()
    };
    assert_eq!(io(), io());
}
