//! Golden digests for the dynamic-maintenance layer.
//!
//! Companion to `golden_trace.rs` (static algorithm traces) and
//! `golden_report.rs` (section report fragments): pins the FNV-1a
//! digest of the canonical G5 update-stream maintenance trace and of
//! the rendered `updates` section report, and holds the section to the
//! scheduler's byte-identical-at-any-jobs contract.
//!
//! If an intentional change lands, regenerate the constants below (the
//! failure messages print the new values) and note the break in
//! CHANGES.md.

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::{DagGenerator, Graph, StreamKind, UpdateStream};
use tc_study::trace::{DigestSink, Tracer};

/// Pinned (hash, event count) of the canonical update-stream trace:
/// the canonical G5 instance (n = 2000, F = 5, l = 200, seed 7),
/// mixed-churn stream of 2 batches × 8 ops at locality 200 with seed
/// 0xD41A_0007, 20-page buffer, one digest across both applies.
const GOLDEN_STREAM: (u64, u64) = (0x779F6F2E577FB726, 27055387);

/// Pinned FNV-1a digest of the `updates` section report fragment on the
/// quick grid (1 instance × 1 source set) — the same value
/// `golden_report.rs` pins for the section in its registry-wide table.
const GOLDEN_UPDATES_REPORT: u64 = 0x9CF8F6B0C48C160D;

/// FNV-1a over a report fragment's bytes (same family as the other
/// golden suites).
fn digest(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn canonical_graph() -> Graph {
    DagGenerator::new(2000, 5.0, 200).seed(7).generate()
}

/// Must match `tests/dynamic_differential.rs`'s canonical stream.
fn canonical_stream(g: &Graph) -> UpdateStream {
    UpdateStream::generate(g, StreamKind::Mixed, 2, 8, 200, 0xD41A_0007)
}

#[test]
fn canonical_update_stream_trace_matches_golden_digest() {
    let g = canonical_graph();
    let sink = Arc::new(DigestSink::new());
    let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(sink.clone()));
    let mut dyn_tc = DynamicClosure::build(&g, &cfg).expect("build");
    for batch in canonical_stream(&g).batches() {
        dyn_tc.apply(batch).expect("apply");
    }
    let d = sink.digest();
    assert_eq!(
        (d.hash, d.count),
        GOLDEN_STREAM,
        "the canonical update-stream trace changed — if intentional, set \
         GOLDEN_STREAM to ({:#018X}, {}) and note the trace break in \
         CHANGES.md",
        d.hash,
        d.count,
    );
}

#[test]
fn updates_report_matches_golden_digest_at_any_jobs() {
    let f = tc_bench::experiments::section("updates").expect("updates section registered");
    let jobs1 = f(&tc_bench::ExpOpts::quick().jobs(1)).expect("updates at jobs=1");
    let jobs4 = f(&tc_bench::ExpOpts::quick().jobs(4)).expect("updates at jobs=4");
    assert_eq!(
        jobs1, jobs4,
        "updates report diverged between jobs=1 and jobs=4 — a cell is \
         reading shared state"
    );
    let d = digest(&jobs1);
    assert_eq!(
        d, GOLDEN_UPDATES_REPORT,
        "the updates report fragment changed — if intentional, set \
         GOLDEN_UPDATES_REPORT to {d:#018X} (and the matching row in \
         tests/golden_report.rs) and note the break in CHANGES.md",
    );
}
