//! Backend differential test: the simulated disk and the file-backed
//! store must be observationally identical.
//!
//! The file backend ([`tc_study::storage::FileStore`]) mirrors the
//! simulated disk's allocator (LIFO free-list reuse), its counting
//! contract (one transfer per successful page read/write; catalog
//! operations uncounted) and its event emission order. This test holds
//! it to that: every one of the eight algorithms, on the canonical G5
//! workload (n = 2000, F = 5, l = 200, seed 7, 20-page buffer, sources
//! {11, 503, 977}), must produce **bit-identical** cost metrics and
//! FNV-1a trace digests on both backends.
//!
//! The file backend runs in a fresh temp directory whose cleanup rides
//! on `TempDir::drop`, so the directory is removed whether the test
//! passes or panics (unwinding drops the store either way).

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::storage::Backend;
use tc_study::trace::{DigestSink, Tracer};

fn canonical_graph() -> tc_study::graph::Graph {
    DagGenerator::new(2000, 5.0, 200).seed(7).generate()
}

fn canonical_query() -> Query {
    Query::partial(vec![11, 503, 977])
}

/// Everything one run exposes, in comparable form.
struct Observed {
    algo: &'static str,
    digest_hash: u64,
    digest_count: u64,
    replayed: tc_study::trace::ReplayedMetrics,
    total_io: u64,
    answer_tuples: u64,
    estimated_io_seconds: f64,
}

/// Runs all eight algorithms on one database (same reuse pattern as the
/// golden-trace suite) on the given backend.
fn run_all(backend: Backend) -> Vec<Observed> {
    let g = canonical_graph();
    let base = SystemConfig::with_buffer(20).backend(backend.clone());
    let mut db = Database::build_for(&g, true, &base).expect("build database");
    assert_eq!(db.backend_name(), backend.name(), "wrong backend opened");
    let mut out = Vec::new();
    for algo in Algorithm::ALL {
        let sink = Arc::new(DigestSink::new());
        let cfg = base.clone().traced(Tracer::new(sink.clone()));
        let res = db.run(&canonical_query(), algo, &cfg).expect("run");
        let d = sink.digest();
        out.push(Observed {
            algo: algo.name(),
            digest_hash: d.hash,
            digest_count: d.count,
            replayed: res.metrics.to_replayed(),
            total_io: res.metrics.total_io(),
            answer_tuples: res.metrics.answer_tuples,
            estimated_io_seconds: res.metrics.estimated_io_seconds,
        });
    }
    out
}

#[test]
fn every_algorithm_is_bit_identical_on_sim_and_file() {
    let sim = run_all(Backend::Sim);
    let file = run_all(Backend::file_temp());
    assert_eq!(sim.len(), file.len());
    for (s, f) in sim.iter().zip(&file) {
        assert_eq!(s.algo, f.algo);
        assert_eq!(
            (s.digest_hash, s.digest_count),
            (f.digest_hash, f.digest_count),
            "{}: trace digest diverged between sim and file backends",
            s.algo
        );
        assert_eq!(
            s.replayed,
            f.replayed,
            "{}: cost metrics diverged; field diff:\n{}",
            s.algo,
            s.replayed.diff(&f.replayed).join("\n")
        );
        assert_eq!(s.total_io, f.total_io, "{}: total_io diverged", s.algo);
        assert_eq!(
            s.answer_tuples, f.answer_tuples,
            "{}: answer_tuples diverged",
            s.algo
        );
        assert_eq!(
            s.estimated_io_seconds.to_bits(),
            f.estimated_io_seconds.to_bits(),
            "{}: estimated_io_seconds diverged",
            s.algo
        );
    }
}

/// Shrinkable random-workload differential: arbitrary small DAGs ×
/// algorithms × replacement policies × buffer sizes must agree between
/// the backends, on the `tc-det` shrinking harness. A divergence shrinks
/// to a minimal (graph, query, config) before panicking.
#[test]
fn random_workloads_agree_across_backends() {
    use tc_study::det::check::{self, Checker};
    use tc_study::det::require_eq;

    #[derive(Clone, Debug)]
    struct Case {
        n: usize,
        seed: u64,
        algo_idx: usize,
        policy_idx: usize,
        buffer: usize,
        sources: Vec<u32>,
    }

    let run_on = |case: &Case, backend: Backend| -> Result<(u64, u64, u64, u64, u64), String> {
        let g = DagGenerator::new(case.n, 3.0, (case.n / 6).max(2))
            .seed(case.seed)
            .generate();
        let algo = Algorithm::ALL[case.algo_idx];
        let policy = tc_study::buffer::PagePolicy::ALL[case.policy_idx];
        let sink = Arc::new(DigestSink::new());
        let cfg = SystemConfig::with_buffer(case.buffer)
            .page_policy(policy)
            .backend(backend)
            .collecting()
            .traced(Tracer::new(sink.clone()));
        let mut db =
            Database::build_for(&g, true, &cfg).map_err(|e| format!("build failed: {e}"))?;
        let sources: Vec<u32> = case.sources.iter().map(|&s| s % case.n as u32).collect();
        let res = db
            .run(&Query::partial(sources), algo, &cfg)
            .map_err(|e| format!("run failed: {e}"))?;
        let d = sink.digest();
        Ok((
            d.hash,
            d.count,
            res.metrics.total_io(),
            res.metrics.tuples_generated,
            res.metrics.answer_tuples,
        ))
    };

    Checker::new("random_workloads_agree_across_backends")
        .cases(16)
        .run(
            |rng| Case {
                n: rng.random_range(20..260usize),
                seed: rng.next_u64(),
                algo_idx: rng.random_range(0..Algorithm::ALL.len()),
                policy_idx: rng.random_range(0..tc_study::buffer::PagePolicy::ALL.len()),
                buffer: rng.random_range(4..24usize),
                sources: check::vec_of(rng, 1..6, |r| r.next_u32()),
            },
            |case| {
                let mut out: Vec<Case> = check::shrink_vec(&case.sources)
                    .into_iter()
                    .filter(|s| !s.is_empty())
                    .map(|sources| Case {
                        sources,
                        ..case.clone()
                    })
                    .collect();
                if case.n > 20 {
                    out.push(Case {
                        n: (case.n / 2).max(20),
                        ..case.clone()
                    });
                }
                if case.algo_idx != 0 {
                    out.push(Case {
                        algo_idx: 0,
                        ..case.clone()
                    });
                }
                if case.policy_idx != 0 {
                    out.push(Case {
                        policy_idx: 0,
                        ..case.clone()
                    });
                }
                out
            },
            |case| {
                let sim = run_on(case, Backend::Sim)?;
                let file = run_on(case, Backend::file_temp())?;
                require_eq!(
                    sim,
                    file,
                    "(digest, events, io, tuples, answer) diverged for {} / {}",
                    Algorithm::ALL[case.algo_idx],
                    tc_study::buffer::PagePolicy::ALL[case.policy_idx].name()
                );
                Ok(())
            },
        );
}

#[test]
fn file_backend_temp_dir_is_cleaned_up() {
    // The auto-cleaning temp directory is what makes the differential
    // test (and every file-backend experiment cell) leave nothing
    // behind, pass or fail. Capture the directory, drop the database,
    // and check the directory is gone.
    use tc_study::storage::{FileStore, TempDir};
    let g = DagGenerator::new(120, 3.0, 30).seed(5).generate();
    let cfg = SystemConfig::with_buffer(10);
    let tmp = TempDir::new("tc-diff").expect("temp dir");
    let dir = tmp.path().to_path_buf();
    let store = FileStore::create_in(tmp).expect("create store");
    let mut db = Database::build_on(&g, false, Box::new(store)).expect("build");
    assert!(dir.exists(), "store directory missing while database lives");
    db.run(&Query::partial(vec![1]), Algorithm::Btc, &cfg)
        .expect("run");
    drop(db);
    assert!(
        !dir.exists(),
        "temp store directory survived database drop: {}",
        dir.display()
    );
}
