//! Determinism-under-timing suite: arming the wall-clock layer leaves
//! every gated byte untouched.
//!
//! `obs_overhead.rs` shows spans are free when disabled; this suite
//! shows they are *inert* when enabled. Three gates, one per pinned
//! surface:
//!
//! - the nine golden G5 event-trace digests (`golden_trace.rs`) hold
//!   with a span collector armed on the same run;
//! - an experiment section renders byte-identical report fragments
//!   with and without `--timing`, while the timing sidecar files are
//!   themselves well-formed span trees;
//! - the canonical serve reproduces its golden reply digest, page and
//!   cache counters (`golden_serve.rs`) with `ServeObs` enabled, at 1
//!   and 4 workers, while the latency histograms demonstrably filled.
//!
//! The golden constants are deliberately the same values as in their
//! home tests — if a pin regenerates there, regenerate it here too
//! (both failure messages print the new table).

use std::sync::Arc;
use tc_bench::experiments::section;
use tc_bench::ExpOpts;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::obs::{SpanRecorder, SpanTree};
use tc_study::serve::{QueryStream, ServeConfig, ServeObs, Service};
use tc_study::storage::TempDir;
use tc_study::trace::{DigestSink, Tracer};

/// Pinned (algorithm, digest hash, event count) per algorithm — the
/// same table as `golden_trace.rs`, which is its source of truth.
const GOLDEN_TRACES: [(&str, u64, u64); 9] = [
    ("BTC", 0x1D96D869883DDEE3, 11529396),
    ("HYB", 0xB2B3F7FA19E7CCF6, 12337053),
    ("BJ", 0x81FF14F2FAADD69C, 10416976),
    ("SRCH", 0xED0E8FCCAA326D6B, 125155),
    ("SPN", 0xFAB19F9F93A86F79, 9977385),
    ("JKB", 0x935C3DC4CFB2FF54, 146559),
    ("JKB2", 0xEE79C2D5908A19EA, 178094),
    ("SEMINAIVE", 0xDA3EAA95B440D129, 155492),
    ("REACHINDEX", 0xC0E6BB75A2724E06, 777327),
];

/// Serving pins — the same values as `golden_serve.rs`.
const GOLDEN_REPLY_DIGEST: u64 = 0xA5C3_446C_233D_2C9E;
const GOLDEN_PAGES_READ: u64 = 4_311;
const GOLDEN_CACHE: (u64, u64) = (1, 180);

#[test]
fn golden_traces_hold_with_span_collector_armed() {
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();
    let mut db = Database::build(&g, true).unwrap();
    let query = Query::partial(vec![11, 503, 977]);
    let mut table = Vec::new();
    for algo in Algorithm::WITH_INDEX {
        let sink = Arc::new(DigestSink::new());
        let (rec, collector) = SpanRecorder::collecting();
        let cfg = SystemConfig::with_buffer(20)
            .traced(Tracer::new(sink.clone()))
            .observed(rec);
        db.run(&query, algo, &cfg).unwrap();
        let tree = collector.tree();
        assert!(
            tree.find(&["run"]).is_some_and(|n| n.count > 0),
            "{algo}: armed collector recorded no run span"
        );
        let d = sink.digest();
        table.push((algo.name(), d.hash, d.count));
    }
    let rendered = table
        .iter()
        .map(|(name, hash, count)| format!("    ({name:?}, {hash:#018X}, {count}),"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(
        table, GOLDEN_TRACES,
        "a timed run drifted off the golden traces — timing leaked into \
         the deterministic track (or the pins moved in golden_trace.rs; \
         then replace this table with):\n{rendered}",
    );
}

#[test]
fn section_reports_are_byte_identical_with_and_without_timing() {
    // Two sections covering distinct engine paths: a full-closure
    // algorithm comparison and the dynamic-maintenance section. (The
    // full 14-section sweep runs timing-armed against the golden
    // digests in `golden_report.rs`.)
    for name in ["fig6", "updates"] {
        let f = section(name).unwrap_or_else(|| panic!("unknown section {name}"));
        let plain = f(&ExpOpts::quick()).unwrap_or_else(|e| panic!("{name} plain run: {e}"));

        let tmp = TempDir::new("tc-obs-timing").expect("temp dir");
        let timed = f(&ExpOpts::quick().timing_dir(tmp.path()))
            .unwrap_or_else(|e| panic!("{name} timed run: {e}"));
        assert_eq!(
            plain, timed,
            "{name}: --timing changed the report bytes — timing must stay \
             strictly outside the deterministic gate"
        );

        // The sidecar actually materialized: one well-formed span tree
        // per cell. Engine cells carry a root-level run span; pure
        // statistics cells legitimately record nothing.
        let (mut span_files, mut with_run) = (0, 0);
        let entries = std::fs::read_dir(tmp.path()).expect("read timing dir");
        for entry in entries {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "json") {
                span_files += 1;
                let text = std::fs::read_to_string(&path).expect("read span file");
                let tree = SpanTree::from_json(&text)
                    .unwrap_or_else(|e| panic!("{}: bad span tree: {e}", path.display()));
                // Query cells root at `run`; update cells at
                // `update_apply` (around DynamicClosure::apply).
                if tree.find(&["run"]).is_some() || tree.find(&["update_apply"]).is_some() {
                    with_run += 1;
                }
            }
        }
        assert!(span_files > 0, "{name}: --timing wrote no span trees");
        assert!(
            with_run > 0,
            "{name}: no span tree recorded an engine run span"
        );
    }
}

#[test]
fn canonical_serve_holds_golden_pins_with_obs_enabled() {
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();
    let snap = ClosedSnapshot::build(&g, &SystemConfig::with_buffer(20)).expect("freeze G5");
    let service = Service::new(Arc::new(snap));
    for workers in [1usize, 4] {
        let obs = ServeObs::enabled();
        let report = service
            .serve(
                &QueryStream::canonical_g5(),
                &ServeConfig::default()
                    .workers(workers)
                    .observed(obs.clone()),
            )
            .expect("canonical serve");
        // The deterministic track: bit-for-bit the golden_serve.rs pins.
        assert_eq!(report.replies(), 256, "workers {workers}: dropped replies");
        assert_eq!(
            report.digest(),
            GOLDEN_REPLY_DIGEST,
            "workers {workers}: reply digest drifted to {:#018x} with obs on",
            report.digest()
        );
        assert_eq!(
            report.pages_read(),
            GOLDEN_PAGES_READ,
            "workers {workers}: pages read drifted with obs on"
        );
        assert_eq!(
            (report.cache_hits(), report.cache_lookups()),
            GOLDEN_CACHE,
            "workers {workers}: cache counters drifted with obs on"
        );
        // The wall-clock track: one service-time sample per reply, and
        // queue waits recorded alongside.
        let service_hist = obs.service_histogram().expect("enabled obs");
        let queue_hist = obs.queue_wait_histogram().expect("enabled obs");
        assert_eq!(
            service_hist.count(),
            256,
            "workers {workers}: service histogram missed replies"
        );
        assert_eq!(
            queue_hist.count(),
            256,
            "workers {workers}: queue-wait histogram missed replies"
        );
        assert_eq!(obs.replies(), Some(256));
    }
}
