//! Model-based property tests: the stateful substrates (buffer pool,
//! successor store) against trivial in-memory reference models under
//! randomized operation sequences.

use proptest::prelude::*;
use tc_study::buffer::{BufferPool, PagePolicy};
use tc_study::storage::{DiskSim, FileKind, Page, PageId, Pager, SuccEntry};
use tc_study::succ::{ListCursor, ListPolicy, SuccStore};

// ---------------------------------------------------------------------
// Buffer pool vs. a flat array of page images.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PoolOp {
    Write { page: usize, value: u32 },
    Read { page: usize },
    Pin { page: usize },
    UnpinAll,
    Flush,
}

fn pool_ops(pages: usize) -> impl Strategy<Value = Vec<PoolOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..pages, any::<u32>()).prop_map(|(page, value)| PoolOp::Write { page, value }),
            (0..pages).prop_map(|page| PoolOp::Read { page }),
            (0..pages).prop_map(|page| PoolOp::Pin { page }),
            Just(PoolOp::UnpinAll),
            Just(PoolOp::Flush),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any op sequence and any policy, reads observe exactly the
    /// model's values, capacity is never exceeded, and counters stay
    /// consistent.
    #[test]
    fn buffer_pool_refines_flat_memory(
        ops in pool_ops(12),
        policy_idx in 0usize..PagePolicy::ALL.len(),
        capacity in 2usize..6,
    ) {
        let policy = PagePolicy::ALL[policy_idx];
        let mut disk = DiskSim::new();
        let file = disk.create_file(FileKind::Temp);
        let pids: Vec<PageId> = (0..12).map(|_| disk.alloc(file).unwrap()).collect();
        let mut pool = BufferPool::new(disk, capacity, PagePolicy::ALL[policy_idx]);
        let mut model = vec![0u32; 12];
        let mut pinned: Vec<PageId> = Vec::new();

        for op in ops {
            match op {
                PoolOp::Write { page, value } => {
                    pool.with_page_mut(pids[page], &mut |p: &mut Page| p.put_u32(0, value))
                        .unwrap();
                    model[page] = value;
                }
                PoolOp::Read { page } => {
                    let v = pool
                        .with_page(pids[page], &mut |p: &Page| p.get_u32(0))
                        .unwrap();
                    prop_assert_eq!(v, model[page], "policy {}", policy.name());
                }
                PoolOp::Pin { page } => {
                    // Keep one frame spare so progress stays possible.
                    if pinned.len() + 1 < capacity && !pinned.contains(&pids[page]) {
                        pool.pin(pids[page]).unwrap();
                        pinned.push(pids[page]);
                    }
                }
                PoolOp::UnpinAll => {
                    for p in pinned.drain(..) {
                        pool.unpin(p);
                    }
                }
                PoolOp::Flush => pool.flush_all().unwrap(),
            }
            prop_assert!(pool.resident() <= capacity);
            let s = pool.stats();
            prop_assert_eq!(s.hits + s.misses, s.requests);
            prop_assert!(s.read_hits <= s.read_requests);
        }
        // Pinned pages must still be resident at the end.
        for &p in &pinned {
            prop_assert!(pool.is_resident(p));
        }
        // After a full flush, the disk itself holds the model's values.
        for p in pinned.drain(..) {
            pool.unpin(p);
        }
        pool.flush_all().unwrap();
        let mut disk = pool.into_disk_discard();
        for (i, &pid) in pids.iter().enumerate() {
            let mut page = Page::new();
            disk.read_page(pid, &mut page).unwrap();
            prop_assert_eq!(page.get_u32(0), model[i]);
        }
    }
}

// ---------------------------------------------------------------------
// Successor store vs. Vec<Vec<u32>>.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved appends across lists, under every list policy, always
    /// read back as the per-list append sequences; the catalog matches
    /// the on-page state throughout.
    #[test]
    fn succ_store_refines_vec_of_vecs(
        appends in proptest::collection::vec((0u32..20, 0u32..2000), 1..400),
        policy_idx in 0usize..ListPolicy::ALL.len(),
        check_every in 50usize..120,
    ) {
        let policy = ListPolicy::ALL[policy_idx];
        let mut disk = DiskSim::new();
        let mut store = SuccStore::new(&mut disk, 20, policy);
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); 20];
        for (i, &(node, value)) in appends.iter().enumerate() {
            store.append(&mut disk, node, SuccEntry::plain(value)).unwrap();
            model[node as usize].push(value);
            if i % check_every == 0 {
                store.verify_integrity(&mut disk).unwrap();
            }
        }
        store.verify_integrity(&mut disk).unwrap();
        for node in 0..20u32 {
            let got = ListCursor::new(&store, node)
                .collect_nodes(&mut disk)
                .unwrap();
            prop_assert_eq!(&got, &model[node as usize], "{} node {}", policy.name(), node);
            prop_assert_eq!(store.len(node), model[node as usize].len());
        }
    }

    /// The flat-list negation convention holds under interleaving: the
    /// last entry of every non-empty list is tagged, all others plain.
    #[test]
    fn flat_tag_invariant(
        appends in proptest::collection::vec((0u32..8, 0u32..500), 1..200),
    ) {
        let mut disk = DiskSim::new();
        let mut store = SuccStore::new(&mut disk, 8, ListPolicy::MoveShortest);
        for &(node, value) in &appends {
            store.append_flat(&mut disk, node, value).unwrap();
        }
        for node in 0..8u32 {
            let entries = ListCursor::new(&store, node)
                .collect_entries(&mut disk)
                .unwrap();
            if let Some((last, rest)) = entries.split_last() {
                prop_assert!(last.tagged, "last entry of node {node} untagged");
                prop_assert!(rest.iter().all(|e| !e.tagged));
            }
        }
    }
}
