//! Model-based property tests: the stateful substrates (buffer pool,
//! successor store) against trivial in-memory reference models under
//! randomized operation sequences, on the `tc-det` harness.

use tc_study::buffer::{BufferPool, PagePolicy};
use tc_study::det::check::{self, Checker};
use tc_study::det::{require, require_eq, Rng};
use tc_study::storage::{DiskSim, FileKind, Page, PageId, PageStore, Pager, SuccEntry};
use tc_study::succ::{ListCursor, ListPolicy, SuccStore};

// ---------------------------------------------------------------------
// Buffer pool vs. a flat array of page images.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PoolOp {
    Write { page: usize, value: u32 },
    Read { page: usize },
    Pin { page: usize },
    UnpinAll,
    Flush,
}

fn pool_op(rng: &mut Rng, pages: usize) -> PoolOp {
    match rng.random_range(0..5u32) {
        0 => PoolOp::Write {
            page: rng.random_range(0..pages),
            value: rng.next_u32(),
        },
        1 => PoolOp::Read {
            page: rng.random_range(0..pages),
        },
        2 => PoolOp::Pin {
            page: rng.random_range(0..pages),
        },
        3 => PoolOp::UnpinAll,
        _ => PoolOp::Flush,
    }
}

/// Under any op sequence and any policy, reads observe exactly the
/// model's values, capacity is never exceeded, and counters stay
/// consistent.
#[test]
fn buffer_pool_refines_flat_memory() {
    Checker::new("buffer_pool_refines_flat_memory")
        .cases(64)
        .run(
            |rng| {
                let ops = check::vec_of(rng, 1..120, |r| pool_op(r, 12));
                let policy_idx = rng.random_range(0..PagePolicy::ALL.len());
                let capacity = rng.random_range(2..6usize);
                (ops, policy_idx, capacity)
            },
            |(ops, policy_idx, capacity)| {
                check::shrink_vec(ops)
                    .into_iter()
                    .filter(|o| !o.is_empty())
                    .map(|o| (o, *policy_idx, *capacity))
                    .collect()
            },
            |(ops, policy_idx, capacity)| {
                let (policy_idx, capacity) = (*policy_idx, *capacity);
                let policy = PagePolicy::ALL[policy_idx];
                let mut disk = DiskSim::new();
                let file = disk.create_file(FileKind::Temp);
                let pids: Vec<PageId> = (0..12).map(|_| disk.alloc(file).unwrap()).collect();
                let mut pool = BufferPool::new(disk, capacity, PagePolicy::ALL[policy_idx]);
                let mut model = vec![0u32; 12];
                let mut pinned: Vec<PageId> = Vec::new();

                for op in ops {
                    match *op {
                        PoolOp::Write { page, value } => {
                            pool.with_page_mut(pids[page], &mut |p: &mut Page| p.put_u32(0, value))
                                .unwrap();
                            model[page] = value;
                        }
                        PoolOp::Read { page } => {
                            let v = pool
                                .with_page(pids[page], &mut |p: &Page| p.get_u32(0))
                                .unwrap();
                            require_eq!(v, model[page], "policy {}", policy.name());
                        }
                        PoolOp::Pin { page } => {
                            // Keep one frame spare so progress stays possible.
                            if pinned.len() + 1 < capacity && !pinned.contains(&pids[page]) {
                                pool.pin(pids[page]).unwrap();
                                pinned.push(pids[page]);
                            }
                        }
                        PoolOp::UnpinAll => {
                            for p in pinned.drain(..) {
                                pool.unpin(p);
                            }
                        }
                        PoolOp::Flush => pool.flush_all().unwrap(),
                    }
                    require!(pool.resident() <= capacity, "capacity exceeded");
                    let s = pool.stats();
                    require_eq!(s.hits + s.misses, s.requests);
                    require!(s.read_hits <= s.read_requests, "read hit accounting");
                }
                // Pinned pages must still be resident at the end.
                for &p in &pinned {
                    require!(pool.is_resident(p), "pinned page {p:?} evicted");
                }
                // After a full flush, the disk itself holds the model's values.
                for p in pinned.drain(..) {
                    pool.unpin(p);
                }
                pool.flush_all().unwrap();
                let mut disk = pool.into_store_discard();
                for (i, &pid) in pids.iter().enumerate() {
                    let mut page = Page::new();
                    disk.read_page(pid, &mut page).unwrap();
                    require_eq!(page.get_u32(0), model[i]);
                }
                Ok(())
            },
        );
}

// ---------------------------------------------------------------------
// Successor store vs. Vec<Vec<u32>>.
// ---------------------------------------------------------------------

/// Interleaved appends across lists, under every list policy, always
/// read back as the per-list append sequences; the catalog matches
/// the on-page state throughout.
#[test]
fn succ_store_refines_vec_of_vecs() {
    Checker::new("succ_store_refines_vec_of_vecs")
        .cases(48)
        .run(
            |rng| {
                let appends = check::vec_of(rng, 1..400, |r| {
                    (r.random_range(0..20u32), r.random_range(0..2000u32))
                });
                let policy_idx = rng.random_range(0..ListPolicy::ALL.len());
                let check_every = rng.random_range(50..120usize);
                (appends, policy_idx, check_every)
            },
            |(appends, policy_idx, check_every)| {
                check::shrink_vec(appends)
                    .into_iter()
                    .filter(|a| !a.is_empty())
                    .map(|a| (a, *policy_idx, *check_every))
                    .collect()
            },
            |(appends, policy_idx, check_every)| {
                let policy = ListPolicy::ALL[*policy_idx];
                let mut disk = DiskSim::new();
                let mut store = SuccStore::new(&mut disk, 20, policy);
                let mut model: Vec<Vec<u32>> = vec![Vec::new(); 20];
                for (i, &(node, value)) in appends.iter().enumerate() {
                    store
                        .append(&mut disk, node, SuccEntry::plain(value))
                        .unwrap();
                    model[node as usize].push(value);
                    if i % check_every == 0 {
                        store.verify_integrity(&mut disk).unwrap();
                    }
                }
                store.verify_integrity(&mut disk).unwrap();
                for node in 0..20u32 {
                    let got = ListCursor::new(&store, node)
                        .collect_nodes(&mut disk)
                        .unwrap();
                    require_eq!(
                        &got,
                        &model[node as usize],
                        "{} node {}",
                        policy.name(),
                        node
                    );
                    require_eq!(store.len(node), model[node as usize].len());
                }
                Ok(())
            },
        );
}

/// The flat-list negation convention holds under interleaving: the
/// last entry of every non-empty list is tagged, all others plain.
#[test]
fn flat_tag_invariant() {
    Checker::new("flat_tag_invariant").cases(48).run(
        |rng| {
            check::vec_of(rng, 1..200, |r| {
                (r.random_range(0..8u32), r.random_range(0..500u32))
            })
        },
        |appends| {
            check::shrink_vec(appends)
                .into_iter()
                .filter(|a| !a.is_empty())
                .collect()
        },
        |appends| {
            let mut disk = DiskSim::new();
            let mut store = SuccStore::new(&mut disk, 8, ListPolicy::MoveShortest);
            for &(node, value) in appends {
                store.append_flat(&mut disk, node, value).unwrap();
            }
            for node in 0..8u32 {
                let entries = ListCursor::new(&store, node)
                    .collect_entries(&mut disk)
                    .unwrap();
                if let Some((last, rest)) = entries.split_last() {
                    require!(last.tagged, "last entry of node {node} untagged");
                    require!(rest.iter().all(|e| !e.tagged), "non-last entry tagged");
                }
            }
            Ok(())
        },
    );
}
