//! Fault-injection suite: differential runs under transient faults, and
//! property-tested buffer-pool invariants under random fault plans.
//!
//! The contract under test (see DESIGN.md, "Fault model"): transient
//! faults that clear on retry must be *invisible* in every logical and
//! physical metric except the retry counters, and no storage error may
//! leave the buffer pool structurally inconsistent (dropped dirty page,
//! leaked frame, unbalanced pin).

use tc_study::buffer::{BufferPool, PagePolicy};
use tc_study::core::prelude::*;
use tc_study::det::check::{self, Checker};
use tc_study::det::Rng;
use tc_study::graph::DagGenerator;
use tc_study::storage::{
    DiskSim, FaultConfig, FaultKind, FaultPlan, FileKind, Page, PageId, Pager, StorageError,
};

fn workload() -> tc_study::graph::Graph {
    DagGenerator::new(300, 4.0, 80).seed(11).generate()
}

/// Everything a run reports that must not change under retried faults.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    answer: Option<Vec<(u32, u32)>>,
    answer_tuples: u64,
    total_io: u64,
    restructure_io: (u64, u64),
    compute_io: (u64, u64),
    io_by_kind: [(u64, u64); 6],
    tuples_generated: u64,
    duplicates: u64,
    unions: u64,
    arcs_processed: u64,
    arcs_marked: u64,
    tuple_reads: u64,
    tuple_writes: u64,
    list_fetches: u64,
    buffer_requests: u64,
    buffer_hits: u64,
    buffer_misses: u64,
}

fn fingerprint(res: &RunResult) -> Fingerprint {
    let m = &res.metrics;
    Fingerprint {
        answer: res.answer.clone(),
        answer_tuples: m.answer_tuples,
        total_io: m.total_io(),
        restructure_io: (m.restructure_io.reads, m.restructure_io.writes),
        compute_io: (m.compute_io.reads, m.compute_io.writes),
        io_by_kind: m.io_by_kind,
        tuples_generated: m.tuples_generated,
        duplicates: m.duplicates,
        unions: m.unions,
        arcs_processed: m.arcs_processed,
        arcs_marked: m.arcs_marked,
        tuple_reads: m.tuple_reads,
        tuple_writes: m.tuple_writes,
        list_fetches: m.list_fetches,
        buffer_requests: m.buffer.requests,
        buffer_hits: m.buffer.hits,
        buffer_misses: m.buffer.misses,
    }
}

/// Satellite (a): for every algorithm, a run under a transient-only
/// fault plan (faults that always clear on retry) is byte-identical to
/// the fault-free run in answers and in every logical/physical metric;
/// only the retry counters differ.
#[test]
fn transient_faults_are_invisible_except_retries() {
    let g = workload();
    let q = Query::partial(vec![3, 50, 120]);
    let mut total_retries = 0u64;
    let mut total_injected = 0u64;
    for algo in Algorithm::ALL {
        // Fresh databases so both runs start from identical disk state.
        let run = |fault: Option<FaultConfig>| {
            let mut db = Database::build(&g, true).unwrap();
            let mut cfg = SystemConfig::default().collecting();
            cfg.fault = fault;
            db.run(&q, algo, &cfg).unwrap()
        };
        let clean = run(None);
        let faulted = run(Some(
            FaultConfig::new(0xFA17 + algo as u64)
                .transient_reads(0.05)
                .transient_writes(0.05),
        ));
        assert_eq!(
            fingerprint(&clean),
            fingerprint(&faulted),
            "{algo}: transient faults changed an observable metric"
        );
        assert_eq!(clean.metrics.io_retries, 0, "{algo}");
        assert_eq!(clean.fault_trace.len(), 0, "{algo}");
        assert_eq!(
            faulted.metrics.io_retries, faulted.metrics.faults_injected,
            "{algo}: every transient injection is matched by one retry"
        );
        assert_eq!(
            faulted.fault_trace.len() as u64,
            faulted.metrics.faults_injected,
            "{algo}"
        );
        total_retries += faulted.metrics.io_retries;
        total_injected += faulted.metrics.faults_injected;
    }
    assert!(
        total_retries > 0 && total_injected > 0,
        "the plans injected nothing; the differential test is vacuous"
    );
}

/// The fault trace of a faulted run replays bit-for-bit: same seed, same
/// workload, same events.
#[test]
fn fault_trace_replays_across_runs() {
    let g = workload();
    let run = || {
        let mut db = Database::build(&g, true).unwrap();
        let cfg = SystemConfig::default().faulted(
            FaultConfig::new(7)
                .transient_reads(0.1)
                .transient_writes(0.1),
        );
        db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.fault_trace, b.fault_trace);
    assert_eq!(a.metrics.io_retries, b.metrics.io_retries);
    assert_eq!(a.metrics.retry_backoff_ms, b.metrics.retry_backoff_ms);
}

// ---------------------------------------------------------------------
// Satellite (b): buffer-pool invariants under random fault plans
// ---------------------------------------------------------------------

/// A raw generated fault schedule: `(op_index, kind_code)` pairs, kept
/// raw so the shrinker can drop entries and report the minimal failing
/// schedule.
type RawCase = (u64, Vec<(u64, u8)>);

fn kind_of(code: u8) -> FaultKind {
    match code % 4 {
        0 => FaultKind::TransientRead,
        1 => FaultKind::TransientWrite,
        2 => FaultKind::PermanentRead,
        _ => FaultKind::Corrupt,
    }
}

fn gen_case(rng: &mut Rng) -> RawCase {
    let seed = rng.next_u64();
    let schedule = check::vec_of(rng, 0..12usize, |r| {
        (r.random_range(0..150u64), r.random_range(0..4u8))
    });
    (seed, schedule)
}

fn shrink_case(&(seed, ref schedule): &RawCase) -> Vec<RawCase> {
    check::shrink_vec(schedule)
        .into_iter()
        .map(|s| (seed, s))
        .collect()
}

/// Drives one pool through a deterministic op mix under the case's fault
/// plan, checking structural invariants after every step.
fn pool_invariants_hold(case: &RawCase, policy: PagePolicy) -> Result<(), String> {
    let &(seed, ref schedule) = case;
    let mut disk = DiskSim::new();
    let file = disk.create_file(FileKind::Temp);
    let mut pids = Vec::new();
    for i in 0..12u32 {
        let pid = disk.alloc(file).unwrap();
        let mut p = Page::new();
        p.put_u32(0, i);
        disk.write_page(pid, &p).unwrap();
        pids.push(pid);
    }
    let mut cfg = FaultConfig::new(seed)
        .transient_reads(0.1)
        .transient_writes(0.1)
        .permanent_reads(0.01)
        .corrupt_writes(0.02);
    for &(op, code) in schedule {
        cfg = cfg.at_op(op, kind_of(code));
    }
    disk.set_fault_plan(FaultPlan::new(cfg));

    let mut pool = BufferPool::new(disk, 4, policy);
    let mut rng = Rng::from_seed(seed ^ 0x600D);
    let mut pinned: Vec<PageId> = Vec::new();
    for step in 0..120 {
        let pid = *rng.choose(&pids).unwrap();
        let r: Result<(), StorageError> = match rng.random_range(0..5u8) {
            0 => pool.with_page(pid, &mut |_p: &Page| ()),
            1 => pool.with_page_mut(pid, &mut |p: &mut Page| p.put_u32(4, step)),
            2 if pinned.len() < 3 => pool.pin(pid).map(|()| pinned.push(pid)),
            3 if !pinned.is_empty() => {
                let p = pinned.swap_remove(rng.random_range(0..pinned.len()));
                pool.unpin(p);
                Ok(())
            }
            _ => pool.flush_all(),
        };
        // Errors are expected (that is the point); corruption must stay
        // *detected*, never silent.
        if let Err(e) = r {
            if !matches!(
                e,
                StorageError::TransientIo { .. }
                    | StorageError::RetriesExhausted { .. }
                    | StorageError::PermanentFault(_)
                    | StorageError::ChecksumMismatch { .. }
                    | StorageError::AllFramesPinned
            ) {
                return Err(format!("step {step} ({policy:?}): unexpected error {e}"));
            }
        }
        pool.check_invariants()
            .map_err(|v| format!("step {step} ({policy:?}): {v}"))?;
        // Pins nest per page: compare frames against *distinct* pages.
        let mut distinct: Vec<PageId> = pinned.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if pool.pinned_frames() != distinct.len() {
            return Err(format!(
                "step {step} ({policy:?}): {} frames pinned, expected {}",
                pool.pinned_frames(),
                distinct.len()
            ));
        }
    }
    for p in pinned.drain(..) {
        pool.unpin(p);
    }
    if pool.pinned_frames() != 0 {
        return Err(format!("({policy:?}): pins leaked after drain"));
    }
    pool.check_invariants()
        .map_err(|v| format!("({policy:?}): {v}"))
}

#[test]
fn pool_invariants_hold_under_random_fault_plans() {
    Checker::new("pool_invariants_hold_under_random_fault_plans")
        .cases(48)
        .run(
            |rng| gen_case(rng),
            shrink_case,
            |case| {
                for policy in PagePolicy::ALL {
                    pool_invariants_hold(case, policy)?;
                }
                Ok(())
            },
        );
}
