//! Property test: `metrics ≡ replay(trace)` on random workloads.
//!
//! The observability layer's contract is that the engine's cost metrics
//! and the event trace are two views of the same execution: folding the
//! trace back through [`tc_study::trace::replay`] must reconstruct every
//! metric field exactly. `golden_trace.rs` checks this on the canonical
//! G5 workload; this test checks it on `tc-det`-generated random small
//! workloads across all eight algorithms, every page-replacement policy,
//! and optional transient-fault plans (replay a failure with the printed
//! `TC_DET_SEED=...`).

use std::sync::Arc;
use tc_study::buffer::PagePolicy;
use tc_study::core::prelude::*;
use tc_study::det::check::{self, Checker};
use tc_study::det::{require, require_eq, Rng};
use tc_study::graph::Graph;
use tc_study::trace::{replay, Tracer, VecSink};

/// Raw generated input: node count plus unconstrained arc pairs (kept
/// raw so shrinking can drop arcs directly), a source set, a policy
/// index, and an optional fault seed.
type RawCase = ((usize, Vec<(u32, u32)>), Vec<u32>, usize, Option<u64>);

fn dag_of(&(n, ref pairs): &(usize, Vec<(u32, u32)>)) -> Graph {
    Graph::from_arcs(
        n,
        pairs.iter().filter_map(|&(a, b)| {
            use std::cmp::Ordering::*;
            match a.cmp(&b) {
                Less => Some((a, b)),
                Greater => Some((b, a)),
                Equal => None,
            }
        }),
    )
}

fn generate(rng: &mut Rng) -> RawCase {
    let n = rng.random_range(2..40usize);
    let pairs = check::vec_of(rng, 0..120, |r| {
        (r.random_range(0..n as u32), r.random_range(0..n as u32))
    });
    let sources = check::vec_of(rng, 1..4, |r| r.random_range(0..n as u32));
    let policy = rng.random_range(0..PagePolicy::ALL.len());
    let fault = rng
        .random_range(0..3u32)
        .eq(&0)
        .then(|| rng.random_range(0..1_000_000));
    ((n, pairs), sources, policy, fault)
}

fn shrink(case: &RawCase) -> Vec<RawCase> {
    let ((n, pairs), sources, policy, fault) = case;
    let mut out: Vec<RawCase> = check::shrink_vec(pairs)
        .into_iter()
        .map(|p| ((*n, p), sources.clone(), *policy, *fault))
        .collect();
    if fault.is_some() {
        // A fault-free version of the same case is always simpler.
        out.push(((*n, pairs.clone()), sources.clone(), *policy, None));
    }
    out
}

#[test]
fn replay_reconstructs_metrics_on_random_workloads() {
    Checker::new("replay_reconstructs_metrics")
        .cases(24)
        .run(generate, shrink, |case| {
            let (raw, sources, policy, fault) = case;
            let g = dag_of(raw);
            let mut db = Database::build(&g, true).unwrap();
            for algo in Algorithm::ALL {
                let sink = Arc::new(VecSink::unbounded());
                let mut cfg = SystemConfig::with_buffer(8).traced(Tracer::new(sink.clone()));
                cfg.page_policy = PagePolicy::ALL[*policy];
                if let Some(seed) = fault {
                    cfg.fault = Some(
                        FaultConfig::new(*seed)
                            .transient_reads(0.05)
                            .transient_writes(0.05),
                    );
                }
                // A fault plan may exhaust the retry budget; an erroring
                // run produces no metrics, so there is nothing to check.
                let Ok(res) = db.run(&Query::partial(sources.clone()), algo, &cfg) else {
                    continue;
                };
                require_eq!(sink.dropped(), 0, "{}: VecSink dropped events", algo);
                let replayed = match replay(sink.events()) {
                    Ok(r) => r,
                    Err(e) => return Err(format!("{algo}: replay failed: {e:?}")),
                };
                let expected = res.metrics.to_replayed();
                require!(
                    replayed == expected,
                    "{}: replay(trace) != metrics; field diff:\n{}",
                    algo,
                    expected.diff(&replayed).join("\n")
                );
            }
            Ok(())
        });
}
