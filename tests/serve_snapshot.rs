//! Snapshot-swap consistency: queries racing `DynamicClosure::apply`
//! batches must each see exactly one consistent closure.
//!
//! A publisher thread applies the batches of a seeded update stream
//! to the live `DynamicClosure`, freezing and publishing a snapshot
//! after each, while the service concurrently plays a query stream.
//! Every reply records the epoch that answered it; afterwards each
//! reply is checked against the incremental oracle *for that epoch* —
//! the same `closure::successors_of` oracle `dynamic_differential`
//! holds the maintained closure to. A reply mixing two epochs (a `ptc`
//! row with a tuple only one of them has, a `path` using an arc the
//! epoch deleted) fails the exact-epoch comparison.

use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::{closure, DagGenerator, Graph, NodeId, StreamKind, UpdateOp, UpdateStream};
use tc_study::serve::{LoopMode, MixSpec, QueryStream, Reply, Request, ServeConfig, Service};

const BATCHES: usize = 3;

/// The per-epoch graphs: epoch 0 is the base, epoch i the base after
/// the first i batches.
fn epoch_graphs(g: &Graph, stream: &UpdateStream) -> Vec<Graph> {
    let mut out = vec![g.clone()];
    let mut live = g.clone();
    for batch in stream.batches() {
        for op in batch {
            match *op {
                UpdateOp::Insert(u, v) => live.add_arc(u, v),
                UpdateOp::Delete(u, v) => live.remove_arc(u, v),
            };
        }
        out.push(live.clone());
    }
    out
}

#[test]
fn racing_queries_each_see_exactly_one_consistent_closure() {
    let g = DagGenerator::new(400, 3.0, 60).seed(33).generate();
    let updates = UpdateStream::generate(&g, StreamKind::Mixed, BATCHES, 12, 60, 0x5E12_0A11);
    let epochs = epoch_graphs(&g, &updates);

    let cfg = SystemConfig::with_buffer(16);
    let mut dyn_tc = DynamicClosure::build(&g, &cfg).expect("build");
    let service = Service::new(dyn_tc.freeze(0).expect("freeze epoch 0"));

    let queries = QueryStream::generate(
        g.n(),
        4,
        192,
        MixSpec::MIXED,
        0.8,
        LoopMode::Closed,
        0x5E12_0A12,
    );
    let serve_cfg = ServeConfig::default().workers(4).collect_replies(true);

    let report = std::thread::scope(|scope| {
        let publisher = scope.spawn(|| {
            for (i, batch) in updates.batches().iter().enumerate() {
                dyn_tc.apply(batch).expect("apply batch");
                service.publish(dyn_tc.freeze(i as u64 + 1).expect("freeze"));
            }
        });
        let report = service.serve(&queries, &serve_cfg).expect("serve");
        publisher.join().expect("publisher thread");
        report
    });

    assert_eq!(service.snapshot().epoch(), BATCHES as u64);
    assert_eq!(report.replies(), queries.len());

    let mut seen_epochs = [0usize; BATCHES + 1];
    for (c, client) in report.clients.iter().enumerate() {
        for record in &client.records {
            let req = queries.client(c)[record.seq];
            let epoch = record.epoch as usize;
            assert!(epoch <= BATCHES, "reply from unknown epoch {epoch}");
            seen_epochs[epoch] += 1;
            let eg = &epochs[epoch];
            let reply = record.reply.as_ref().expect("collected reply");
            match (req, reply) {
                (Request::Ptc { u }, Reply::Ptc(row)) => {
                    assert_eq!(
                        row,
                        &closure::successors_of(eg, u),
                        "ptc({u}) is not epoch {epoch}'s closure row"
                    );
                }
                (Request::Reach { u, v }, Reply::Reach(b)) => {
                    let expect = closure::successors_of(eg, u).binary_search(&v).is_ok();
                    assert_eq!(*b, expect, "reach({u},{v}) wrong for epoch {epoch}");
                }
                (Request::Path { u, v }, Reply::Path(hops)) => {
                    let expect = closure::successors_of(eg, u).binary_search(&v).is_ok();
                    match hops {
                        None => assert!(!expect, "path({u},{v}) missing in epoch {epoch}"),
                        Some(hops) => {
                            assert!(expect, "path({u},{v}) invented for epoch {epoch}");
                            assert_eq!((hops[0], *hops.last().expect("nonempty")), (u, v));
                            for w in hops.windows(2) {
                                assert!(
                                    eg.has_arc(w[0], w[1]),
                                    "path({u},{v}) uses arc {}→{} absent from epoch {epoch}",
                                    w[0],
                                    w[1]
                                );
                            }
                        }
                    }
                }
                (req, reply) => panic!("shape mismatch: {req:?} answered by {reply:?}"),
            }
        }
    }
    let observed: Vec<usize> = (0..=BATCHES).filter(|&e| seen_epochs[e] > 0).collect();
    assert!(!observed.is_empty());
    eprintln!("epoch reply counts: {seen_epochs:?} (observed epochs {observed:?})");
}

/// The same race, but with every update batch guaranteed to land
/// mid-stream: each publish happens between two serve calls, so the
/// suite also pins that a *quiescent* swap changes answers atomically —
/// replies before the publish all carry the old epoch, replies after
/// it all carry the new one, and both sides match their own oracle.
#[test]
fn quiescent_swaps_flip_the_epoch_atomically() {
    let g = DagGenerator::new(250, 3.0, 50).seed(34).generate();
    let updates = UpdateStream::generate(&g, StreamKind::Mixed, 2, 10, 50, 0x5E12_0A13);
    let epochs = epoch_graphs(&g, &updates);

    let cfg = SystemConfig::with_buffer(16);
    let mut dyn_tc = DynamicClosure::build(&g, &cfg).expect("build");
    let service = Service::new(dyn_tc.freeze(0).expect("freeze"));
    let queries = QueryStream::generate(
        g.n(),
        2,
        32,
        MixSpec::PTC_HEAVY,
        0.6,
        LoopMode::Closed,
        0x5E12_0A14,
    );
    let serve_cfg = ServeConfig::default().workers(2).collect_replies(true);

    for (i, batch) in updates.batches().iter().enumerate() {
        let report = service.serve(&queries, &serve_cfg).expect("serve");
        let eg = &epochs[i];
        for (c, client) in report.clients.iter().enumerate() {
            for record in &client.records {
                assert_eq!(record.epoch, i as u64, "stale epoch mid-quiescence");
                if let (Request::Ptc { u }, Some(Reply::Ptc(row))) =
                    (queries.client(c)[record.seq], record.reply.as_ref())
                {
                    assert_eq!(row, &closure::successors_of(eg, u), "epoch {i} ptc({u})");
                }
            }
        }
        dyn_tc.apply(batch).expect("apply");
        service.publish(dyn_tc.freeze(i as u64 + 1).expect("freeze"));
    }
    let last = service.serve(&queries, &serve_cfg).expect("final serve");
    for client in &last.clients {
        for record in &client.records {
            assert_eq!(record.epoch, updates.batches().len() as u64);
        }
    }
}
