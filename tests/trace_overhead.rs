//! Zero-cost-when-disabled guard for the observability layer.
//!
//! Tracing must be free when off and inert when on: a disabled
//! [`Tracer`]'s `emit` is a single branch over a `Copy` event (no
//! allocation), and attaching a sink must not perturb a single metric —
//! the canonical G5 BTC run stays at its golden 17624 page transfers
//! either way.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use tc_study::core::prelude::*;
use tc_study::graph::DagGenerator;
use tc_study::trace::{DigestSink, Event, Kind, Phase, Tracer};

/// Counts allocations per thread (thread-local, so the harness running
/// other tests concurrently in this binary cannot perturb the count).
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY-FREE: pure delegation to `System` plus a Cell bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

const GOLDEN_TOTAL_IO: u64 = 17624;

#[test]
fn disabled_tracer_emit_does_not_allocate() {
    let t = Tracer::disabled();
    assert!(!t.is_enabled());
    // Exercise a representative spread of event shapes, including the
    // field-heavy ones.
    let before = allocs_on_this_thread();
    for i in 0..10_000u64 {
        t.emit(Event::BufHit {
            page: i as u32,
            read: true,
        });
        t.emit(Event::PageWrite {
            page: i as u32,
            kind: Kind::Temp,
        });
        t.emit(Event::Union);
        t.emit(Event::Locality { delta: i as f64 });
        t.emit(Event::PhaseBegin {
            phase: Phase::Compute,
        });
        t.emit(Event::Rect {
            height: 1.0,
            width: 2.0,
            max_level: 3,
            arcs: i,
            nodes: i,
        });
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "a disabled Tracer::emit allocated — the no-op path must be free"
    );
}

#[test]
fn golden_g5_metrics_are_identical_with_and_without_tracing() {
    let g = DagGenerator::new(2000, 5.0, 200).seed(7).generate();

    // Untraced run: the golden number must hold with tracing compiled in
    // but disabled (the production default).
    let mut db = Database::build(&g, true).unwrap();
    let untraced = db
        .run(
            &Query::full(),
            Algorithm::Btc,
            &SystemConfig::with_buffer(20),
        )
        .unwrap();
    assert_eq!(
        untraced.metrics.total_io(),
        GOLDEN_TOTAL_IO,
        "tracing-disabled G5 BTC page I/O moved off the golden value"
    );

    // Traced run (streaming digest sink): every metric field identical.
    let mut db = Database::build(&g, true).unwrap();
    let sink = Arc::new(DigestSink::new());
    let cfg = SystemConfig::with_buffer(20).traced(Tracer::new(sink.clone()));
    let traced = db.run(&Query::full(), Algorithm::Btc, &cfg).unwrap();
    assert!(sink.digest().count > 0, "sink saw no events");
    assert_eq!(traced.metrics.total_io(), GOLDEN_TOTAL_IO);
    assert_eq!(
        traced.metrics.to_replayed(),
        untraced.metrics.to_replayed(),
        "attaching a sink changed the measured metrics"
    );
}
