//! Crash-safety tests for the file-backed store against *real* files:
//! CRC detection of bit rot, torn-write detection on reopen, and
//! free-page reuse keeping the segment from growing.
//!
//! Every test works in a `TempDir`, so the on-disk artifacts vanish on
//! drop — pass or fail.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use tc_study::storage::file_store::SEGMENT_FILE;
use tc_study::storage::{
    Backend, FileKind, FileStore, Page, PageStore, StorageError, TempDir, FILE_STORE_HEADER_SIZE,
    FILE_STORE_SLOT_SIZE, PAGE_SIZE,
};

/// Creates a store in `dir`, writes one recognizable page, syncs, and
/// returns the page id's slot index.
fn seed_store(dir: &std::path::Path) -> usize {
    let mut store = FileStore::create(dir).expect("create");
    let f = store.new_file(FileKind::Relation);
    let pid = store.alloc(f).expect("alloc");
    let mut page = Page::new();
    for i in 0..(PAGE_SIZE / 4) {
        page.put_u32(i * 4, 0xC0DE_0000 | i as u32);
    }
    store.write_page(pid, &page).expect("write");
    store.sync().expect("sync");
    pid.index()
}

#[test]
fn bit_flip_is_detected_as_checksum_mismatch() {
    let tmp = TempDir::new("tc-recovery-flip").expect("tempdir");
    let slot = seed_store(tmp.path());

    // Flip one payload byte in the slot, past the header.
    let seg = tmp.path().join(SEGMENT_FILE);
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&seg)
        .expect("open segment");
    let off = slot as u64 * FILE_STORE_SLOT_SIZE as u64 + FILE_STORE_HEADER_SIZE as u64 + 100;
    let mut b = [0u8; 1];
    file.seek(SeekFrom::Start(off)).unwrap();
    file.read_exact(&mut b).unwrap();
    b[0] ^= 0x01;
    file.seek(SeekFrom::Start(off)).unwrap();
    file.write_all(&b).unwrap();
    file.sync_all().unwrap();
    drop(file);

    // Open-time recovery classifies the page as corrupt…
    let mut store = FileStore::open(tmp.path()).expect("open");
    let report = store.recovery().clone();
    assert_eq!(report.corrupt_pages.len(), 1, "{report:?}");
    assert_eq!(report.corrupt_pages[0].index(), slot);
    assert!(report.torn_pages.is_empty(), "{report:?}");

    // …and reading it surfaces the existing typed error.
    let pid = report.corrupt_pages[0];
    let mut page = Page::new();
    match store.read_page(pid, &mut page) {
        Err(StorageError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn truncation_mid_slot_is_detected_as_torn_write() {
    let tmp = TempDir::new("tc-recovery-torn").expect("tempdir");
    let slot = seed_store(tmp.path());

    // Simulate a crash between extending the segment and completing the
    // slot write: cut the file in the middle of the page image.
    let seg = tmp.path().join(SEGMENT_FILE);
    let file = OpenOptions::new().write(true).open(&seg).expect("open");
    let cut = slot as u64 * FILE_STORE_SLOT_SIZE as u64 + FILE_STORE_SLOT_SIZE as u64 / 2;
    file.set_len(cut).expect("truncate");
    file.sync_all().unwrap();
    drop(file);

    let mut store = FileStore::open(tmp.path()).expect("open");
    let report = store.recovery().clone();
    assert_eq!(report.torn_pages.len(), 1, "{report:?}");
    assert_eq!(report.torn_pages[0].index(), slot);

    // The truncated slot reads back zero-padded, which cannot carry a
    // valid header, so the read is a typed failure, not silent zeros.
    let pid = report.torn_pages[0];
    let mut page = Page::new();
    assert!(
        matches!(
            store.read_page(pid, &mut page),
            Err(StorageError::ChecksumMismatch { .. })
        ),
        "torn slot must fail verification on read"
    );
}

#[test]
fn freed_pages_are_reused_before_the_segment_grows() {
    let tmp = TempDir::new("tc-recovery-reuse").expect("tempdir");
    let mut store = FileStore::create(tmp.path()).expect("create");
    let scratch = store.new_file(FileKind::Temp);
    let mut first: Vec<_> = Vec::new();
    for _ in 0..8 {
        first.push(store.alloc(scratch).expect("alloc"));
    }
    let page = Page::new();
    for &pid in &first {
        store.write_page(pid, &page).expect("write");
    }
    store.sync().expect("sync");
    let grown = std::fs::metadata(tmp.path().join(SEGMENT_FILE))
        .expect("segment")
        .len();

    // Free the file, allocate the same number of pages again: every id
    // comes from the free list (LIFO, like the simulated disk) and the
    // segment must not grow.
    store.drop_file(scratch).expect("drop_file");
    let again = store.new_file(FileKind::Temp);
    let mut second = Vec::new();
    for _ in 0..8 {
        second.push(store.alloc(again).expect("realloc"));
    }
    let mut expected = first.clone();
    expected.reverse();
    assert_eq!(second, expected, "free list must be reused LIFO");
    for &pid in &second {
        store.write_page(pid, &page).expect("rewrite");
    }
    store.sync().expect("sync");
    let after = std::fs::metadata(tmp.path().join(SEGMENT_FILE))
        .expect("segment")
        .len();
    assert_eq!(after, grown, "segment grew despite a full free list");
}

#[test]
fn clean_reopen_round_trips_the_directory() {
    let tmp = TempDir::new("tc-recovery-reopen").expect("tempdir");
    let (pid, kind) = {
        let mut store = FileStore::create(tmp.path()).expect("create");
        let f = store.new_file(FileKind::Index);
        let pid = store.alloc(f).expect("alloc");
        let mut page = Page::new();
        page.put_u32(0, 0xFEED_BEEF);
        store.write_page(pid, &page).expect("write");
        store.sync().expect("sync");
        (pid, store.file_kind(f))
    };
    let mut store = FileStore::open(tmp.path()).expect("open");
    assert!(store.recovery().is_clean());
    assert_eq!(kind, FileKind::Index);
    let mut page = Page::new();
    store.read_page(pid, &mut page).expect("read");
    assert_eq!(page.get_u32(0), 0xFEED_BEEF);
    // The backend keeps its name stable for diagnostics.
    assert_eq!(store.backend_name(), "file");
    assert_eq!(Backend::file_temp().name(), "file");
}
